package graph_test

// Property tests for the sublinear diameter path: iFUB + double sweep
// must equal the all-pairs oracle on every topology class the
// experiments use, including disconnected graphs, and the
// landmark-sampled path-length CI must cover the exact mean at no less
// than (a safety margin under) the nominal 95% rate.

import (
	"math/rand"
	"testing"

	"makalu/internal/graph"
	"makalu/internal/topology"
)

// erGraph builds an Erdős–Rényi G(n, p) graph.
func erGraph(n int, p float64, seed int64) *graph.Mutable {
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewMutable(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// testGraphs returns the frozen topology zoo the estimators are
// validated on: ER at several densities (sparse ones disconnected),
// power-law with hubs, k-regular, a path (worst-case diameter), plus
// degenerate cases.
func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	zoo := map[string]*graph.Graph{}

	for i, p := range []float64{0.002, 0.01, 0.05} {
		zoo[map[int]string{0: "er-sparse", 1: "er-mid", 2: "er-dense"}[i]] =
			erGraph(300, p, int64(100+i)).Freeze(nil)
	}
	// Two ER components of different sizes plus isolated nodes.
	frag := erGraph(120, 0.05, 7)
	for u := 0; u < 60; u++ {
		for _, v := range append([]int32(nil), frag.Neighbors(u)...) {
			if int(v) >= 60 {
				frag.RemoveEdge(u, int(v))
			}
		}
	}
	zoo["er-two-components"] = frag.Freeze(nil)

	plCfg := topology.DefaultPowerLaw()
	plCfg.Seed = 11
	zoo["power-law"] = topology.PowerLaw(400, plCfg).Freeze(nil)
	plCfg.Connect = false
	plCfg.Seed = 13
	zoo["power-law-fragmented"] = topology.PowerLaw(400, plCfg).Freeze(nil)

	kr, err := topology.KRegular(300, 8, 17)
	if err != nil {
		t.Fatal(err)
	}
	zoo["k-regular"] = kr.Freeze(nil)

	path := graph.NewMutable(80)
	for u := 0; u+1 < 80; u++ {
		path.AddEdge(u, u+1)
	}
	zoo["path"] = path.Freeze(nil)

	ring := graph.NewMutable(61)
	for u := 0; u < 61; u++ {
		ring.AddEdge(u, (u+1)%61)
	}
	zoo["ring"] = ring.Freeze(nil)

	zoo["empty"] = graph.NewMutable(0).Freeze(nil)
	zoo["isolated"] = graph.NewMutable(25).Freeze(nil)
	single := graph.NewMutable(2)
	single.AddEdge(0, 1)
	zoo["one-edge"] = single.Freeze(nil)
	return zoo
}

func TestIFUBDiameterMatchesOracle(t *testing.T) {
	scratch := graph.NewBFSScratch(0)
	for name, g := range testGraphs(t) {
		oracle := g.AllPathStats().HopDiameter
		got := g.HopDiameterExact(scratch)
		if got.Diameter != oracle {
			t.Errorf("%s: iFUB diameter %d, oracle %d", name, got.Diameter, oracle)
		}
		if g.N() > 0 && got.BFSRuns > g.N() {
			t.Errorf("%s: iFUB used %d BFS runs on %d nodes", name, got.BFSRuns, g.N())
		}
		if hd := g.HopDiameter(); hd != oracle {
			t.Errorf("%s: HopDiameter() %d, oracle %d", name, hd, oracle)
		}
	}
}

func TestIFUBDiameterRandomized(t *testing.T) {
	// Fuzz over random sizes and densities; every instance must agree
	// with the oracle, connected or not.
	rng := rand.New(rand.NewSource(99))
	scratch := graph.NewBFSScratch(0)
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(120)
		p := rng.Float64() * 6 / float64(n)
		g := erGraph(n, p, rng.Int63()).Freeze(nil)
		oracle := g.AllPathStats().HopDiameter
		if got := g.HopDiameterExact(scratch).Diameter; got != oracle {
			t.Fatalf("trial %d (n=%d p=%.4f): iFUB %d, oracle %d", trial, n, p, got, oracle)
		}
	}
}

func TestIFUBSublinearOnSkewedGraphs(t *testing.T) {
	// On graphs with spread-out eccentricities — power-law hubs, long
	// paths, rings — iFUB must finish in far fewer BFS runs than the N
	// the oracle needs; that is the whole point. (Random-regular
	// expanders are the known worst case for every bound-based exact
	// method: near-uniform eccentricities leave nothing to prune, so
	// sublinearity is asserted on the topologies where the paper's
	// overlays actually live.)
	plCfg := topology.DefaultPowerLaw()
	plCfg.Seed = 29
	cases := map[string]*graph.Graph{
		"power-law": topology.PowerLaw(2000, plCfg).Freeze(nil),
	}
	path := graph.NewMutable(2000)
	for u := 0; u+1 < 2000; u++ {
		path.AddEdge(u, u+1)
	}
	cases["path"] = path.Freeze(nil)

	for name, g := range cases {
		res := g.HopDiameterExact(nil)
		if res.Diameter != g.AllPathStats().HopDiameter {
			t.Fatalf("%s: diameter mismatch: %d vs oracle", name, res.Diameter)
		}
		if res.BFSRuns > g.N()/10 {
			t.Errorf("%s: iFUB needed %d BFS runs on %d nodes; want sublinear",
				name, res.BFSRuns, g.N())
		}
	}
}

func TestLandmarkPathStatsExactWhenKCoversN(t *testing.T) {
	// Connected graphs only: on a disconnected graph the per-source
	// means weight components unequally, so equality with the pairwise
	// mean is not expected.
	for _, name := range []string{"er-dense", "k-regular", "ring"} {
		g := testGraphs(t)[name]
		if !g.IsConnected() {
			t.Fatalf("%s: test requires a connected graph", name)
		}
		exact := g.AllPathStats()
		got := g.LandmarkPathStats(g.N(), rand.New(rand.NewSource(1)), nil)
		if got.MeanHops == 0 || got.Pairs != exact.Pairs {
			t.Errorf("%s: full landmark run pairs %d mean %.4f, oracle pairs %d",
				name, got.Pairs, got.MeanHops, exact.Pairs)
		}
		// On a connected graph, every-source landmarks average the
		// per-source means with equal weight — identical to the pairs
		// mean up to float association order.
		if diff := got.MeanHops - exact.MeanHops; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: full landmark mean %.9f, oracle %.9f", name, got.MeanHops, exact.MeanHops)
		}
	}
}

func TestLandmarkCICoversExactMean(t *testing.T) {
	// Coverage property: across many independent landmark draws, the
	// 95% CI must cover the exact characteristic path length at no
	// less than the nominal rate minus sampling slack. Deterministic
	// seeds keep the test stable; 80% is a conservative floor for a
	// 95% interval over 200 trials.
	graphs := testGraphs(t)
	for _, name := range []string{"er-mid", "er-dense", "k-regular", "power-law"} {
		g := graphs[name]
		if !g.IsConnected() {
			// Coverage is only guaranteed on connected graphs, where
			// per-source means are unbiased for the pairs mean.
			gc, _ := g.GiantComponent()
			g = gc
		}
		exact := g.AllPathStats().MeanHops
		scratch := graph.NewBFSScratch(g.N())
		const trials = 200
		covered := 0
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			est := g.LandmarkPathStats(24, rng, scratch)
			if est.MeanHops-est.MeanHopsCI <= exact && exact <= est.MeanHops+est.MeanHopsCI {
				covered++
			}
		}
		if rate := float64(covered) / trials; rate < 0.80 {
			t.Errorf("%s: CI covered the exact mean in %.0f%% of %d trials; want >= 80%%",
				name, rate*100, trials)
		}
	}
}

func TestLandmarkPathStatsFlagsDisconnection(t *testing.T) {
	g := testGraphs(t)["er-two-components"]
	got := g.LandmarkPathStats(g.N(), rand.New(rand.NewSource(3)), nil)
	if !got.Disconnected {
		t.Error("landmark stats on a two-component graph did not flag disconnection")
	}
}

func TestBFSStatsMatchesPlainBFS(t *testing.T) {
	// The direction-optimizing traversal must produce the same
	// distances as the textbook queue BFS on every zoo graph.
	scratch := graph.NewBFSScratch(0)
	for name, g := range testGraphs(t) {
		n := g.N()
		if n == 0 {
			continue
		}
		dist := make([]int32, n)
		rng := rand.New(rand.NewSource(5))
		for trial := 0; trial < 5; trial++ {
			src := rng.Intn(n)
			wantEcc := g.BFS(src, dist, nil)
			ecc, reached, sum := g.BFSStats(src, scratch)
			if ecc != wantEcc {
				t.Fatalf("%s src %d: ecc %d, want %d", name, src, ecc, wantEcc)
			}
			var wantReached, wantSum int64
			for v, d := range dist {
				if v != src && d != graph.Unreachable {
					wantReached++
					wantSum += int64(d)
				}
			}
			if reached != wantReached || sum != wantSum {
				t.Fatalf("%s src %d: reached/sum %d/%d, want %d/%d",
					name, src, reached, sum, wantReached, wantSum)
			}
			for v, d := range scratch.Dist()[:n] {
				if d != dist[v] {
					t.Fatalf("%s src %d: dist[%d]=%d, want %d", name, src, v, d, dist[v])
				}
			}
		}
	}
}

func TestHopDiameterBudgetBrackets(t *testing.T) {
	// Under any budget the result must bracket the true diameter, be
	// exact when the interval closes, and match the oracle with an
	// unlimited budget. Budget 0 still yields real bounds from the
	// double sweeps.
	for name, g := range testGraphs(t) {
		if g.N() == 0 {
			continue
		}
		oracle := g.AllPathStats().HopDiameter
		scratch := graph.NewBFSScratch(g.N())
		for _, budget := range []int{0, 1, 3, 10, -1} {
			res := g.HopDiameterBudget(budget, scratch)
			if res.Diameter > oracle || res.UB < oracle {
				t.Errorf("%s budget=%d: interval [%d,%d] misses oracle %d",
					name, budget, res.Diameter, res.UB, oracle)
			}
			if res.Exact && res.Diameter != oracle {
				t.Errorf("%s budget=%d: claims exact %d, oracle %d",
					name, budget, res.Diameter, oracle)
			}
			if res.Exact != (res.Diameter == res.UB) {
				t.Errorf("%s budget=%d: Exact=%v but interval [%d,%d]",
					name, budget, res.Exact, res.Diameter, res.UB)
			}
			if budget < 0 && !res.Exact {
				t.Errorf("%s: unlimited budget did not close the interval", name)
			}
		}
	}
}
