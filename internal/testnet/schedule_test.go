package testnet

import "testing"

func TestNodeSeedDeterministicAndDistinct(t *testing.T) {
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		s := NodeSeed(7, i)
		if s == 0 {
			t.Fatalf("NodeSeed(7, %d) = 0 (zero tells makalu-node to self-seed)", i)
		}
		if s != NodeSeed(7, i) {
			t.Fatalf("NodeSeed(7, %d) not deterministic", i)
		}
		if seen[s] {
			t.Fatalf("NodeSeed collision at i=%d", i)
		}
		seen[s] = true
	}
	if NodeSeed(7, 3) == NodeSeed(8, 3) {
		t.Fatal("NodeSeed ignores the driver seed")
	}
}

func TestSeedPeerRange(t *testing.T) {
	if got := SeedPeer(1, 0, 8); got != -1 {
		t.Fatalf("SeedPeer(_, 0, _) = %d, want -1 (node 0 has no seed)", got)
	}
	for i := 1; i < 200; i++ {
		got := SeedPeer(1, i, 8)
		pool := i
		if pool > 8 {
			pool = 8
		}
		if got < 0 || got >= pool {
			t.Fatalf("SeedPeer(1, %d, 8) = %d, outside [0, %d)", i, got, pool)
		}
		if got != SeedPeer(1, i, 8) {
			t.Fatalf("SeedPeer(1, %d, 8) not deterministic", i)
		}
	}
	// The fan-out must actually spread: 100 joiners over 8 seeds should
	// touch most of the pool.
	used := make(map[int]bool)
	for i := 8; i < 108; i++ {
		used[SeedPeer(1, i, 8)] = true
	}
	if len(used) < 6 {
		t.Fatalf("seed fan-out collapsed: only %d of 8 seeds used", len(used))
	}
}

func TestKillWaveDeterministicExactAndSorted(t *testing.T) {
	v1 := KillWave(1, 500, 0.30)
	v2 := KillWave(1, 500, 0.30)
	if len(v1) != 150 {
		t.Fatalf("KillWave(1, 500, 0.30) picked %d victims, want 150", len(v1))
	}
	seen := make(map[int]bool)
	for i, v := range v1 {
		if v != v2[i] {
			t.Fatalf("kill wave not reproducible at position %d: %d vs %d", i, v, v2[i])
		}
		if v < 0 || v >= 500 {
			t.Fatalf("victim %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("victim %d picked twice", v)
		}
		seen[v] = true
		if i > 0 && v1[i-1] >= v {
			t.Fatalf("victims not strictly sorted at %d", i)
		}
	}
	if ScheduleHash(v1) != ScheduleHash(v2) {
		t.Fatal("equal schedules hash differently")
	}
	other := KillWave(2, 500, 0.30)
	if ScheduleHash(other) == ScheduleHash(v1) {
		t.Fatal("different driver seeds produced the same kill wave")
	}
	if KillWave(1, 500, 0) != nil {
		t.Fatal("zero fraction must kill nobody")
	}
	if got := len(KillWave(1, 10, 2.0)); got != 10 {
		t.Fatalf("over-unity fraction killed %d of 10, want all 10", got)
	}
}

// TestKillWaveGoldenHash pins the schedule bytes: if the derivation
// ever changes, committed BENCH_testnet.json hashes (and the CI
// reproducibility check) silently stop matching — fail loudly here
// instead.
func TestKillWaveGoldenHash(t *testing.T) {
	got := ScheduleHash(KillWave(1, 20, 0.30))
	const want = "35912b5bc7db02ea"
	if got != want {
		t.Fatalf("KillWave(1, 20, 0.30) hash = %s, want pinned %s", got, want)
	}
}

func TestPartitionGroupsDisjointCover(t *testing.T) {
	a, b := PartitionGroups(3, 101, 0.4)
	if len(a) != 40 || len(b) != 61 {
		t.Fatalf("group sizes %d/%d, want 40/61", len(a), len(b))
	}
	seen := make(map[int]bool)
	for _, v := range append(append([]int(nil), a...), b...) {
		if seen[v] {
			t.Fatalf("node %d in both groups", v)
		}
		seen[v] = true
	}
	if len(seen) != 101 {
		t.Fatalf("groups cover %d of 101 nodes", len(seen))
	}
	a2, _ := PartitionGroups(3, 101, 0.4)
	for i := range a {
		if a[i] != a2[i] {
			t.Fatal("partition cut not reproducible")
		}
	}
}
