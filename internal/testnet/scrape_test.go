package testnet

import (
	"math"
	"path/filepath"
	"testing"

	"makalu/internal/obs"
)

func TestNodeStatusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "node-0.json")
	reg := obs.NewRegistry()
	reg.Counter("peer.joins").Add(3)
	in := NodeStatus{
		Addr:         "127.0.0.1:21000",
		PID:          1234,
		Seed:         -42,
		TimeUnixNano: 1700000000000000000,
		Degree:       2,
		Neighbors:    []string{"127.0.0.1:21001", "127.0.0.1:21002"},
		Evictions:    5,
		Final:        true,
		Metrics:      reg.Snapshot(),
	}
	if err := WriteNodeStatus(path, in); err != nil {
		t.Fatal(err)
	}
	// Overwrite must replace, not append/merge.
	in.Degree = 3
	in.Neighbors = append(in.Neighbors, "127.0.0.1:21003")
	if err := WriteNodeStatus(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadNodeStatus(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Addr != in.Addr || out.Seed != in.Seed || out.Degree != 3 ||
		len(out.Neighbors) != 3 || !out.Final || out.Evictions != 5 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if out.Metrics.Counters["peer.joins"] != 3 {
		t.Fatalf("metrics lost in round trip: %+v", out.Metrics)
	}
	// The atomic writer must not leave temp droppings behind.
	leftovers, _ := filepath.Glob(filepath.Join(dir, ".status-*"))
	if len(leftovers) != 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
	if _, err := ReadNodeStatus(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("reading a missing status must error")
	}
}

func TestSummarizeDegrees(t *testing.T) {
	if got := SummarizeDegrees(nil); got.Sampled != 0 {
		t.Fatalf("empty scrape: %+v", got)
	}
	snap := map[int]NodeStatus{}
	for i, d := range []int{4, 8, 8, 8, 12} {
		snap[i] = NodeStatus{Degree: d}
	}
	got := SummarizeDegrees(snap)
	if got.Sampled != 5 || got.Min != 4 || got.Max != 12 {
		t.Fatalf("summary %+v", got)
	}
	if math.Abs(got.Mean-8) > 1e-9 || got.P50 != 8 {
		t.Fatalf("mean/p50 wrong: %+v", got)
	}
}

func TestCleanOfAndCrossEdges(t *testing.T) {
	dead := map[string]bool{"a": true}
	if CleanOf(NodeStatus{Neighbors: []string{"b", "a"}}, dead) {
		t.Fatal("dead neighbor not detected")
	}
	if !CleanOf(NodeStatus{Neighbors: []string{"b", "c"}}, dead) {
		t.Fatal("clean set misreported")
	}

	group := map[string]int{"a": 0, "b": 0, "x": 1, "y": 1}
	snap := map[int]NodeStatus{
		0: {Addr: "a", Neighbors: []string{"b", "x"}},      // 1 cross
		1: {Addr: "x", Neighbors: []string{"a", "y", "z"}}, // 1 cross (z unknown: ignored)
	}
	if got := CrossEdges(snap, group); got != 2 {
		t.Fatalf("CrossEdges = %d, want 2", got)
	}
}

func TestSummarizeLatencies(t *testing.T) {
	if got := SummarizeLatencies(nil); got.Count != 0 {
		t.Fatalf("empty sample: %+v", got)
	}
	ms := make([]float64, 100)
	for i := range ms {
		ms[i] = float64(100 - i) // descending: summarize must sort
	}
	got := SummarizeLatencies(ms)
	if got.Count != 100 || got.Max != 100 {
		t.Fatalf("summary %+v", got)
	}
	if got.P50 < 50 || got.P50 > 51.5 || got.P99 < 99 {
		t.Fatalf("percentiles off: %+v", got)
	}
}

func TestReportMergeAndBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_testnet.json")
	rep := &Report{}
	row := Row{
		Nodes: 20, Capacity: 10, KillFraction: 0.3, Seed: 1,
		KillScheduleHash: "abc",
		Degrees:          DegreeSummary{Mean: 9.0},
		QueryPost:        LatencySummary{P99: 40},
	}
	rep.MergeRow(row)
	row2 := row
	row2.Degrees.Mean = 9.5
	rep.MergeRow(row2) // same point: replace
	other := row
	other.Nodes = 500
	rep.MergeRow(other) // new point: append
	if len(rep.Rows) != 2 || rep.Rows[0].Degrees.Mean != 9.5 {
		t.Fatalf("merge semantics wrong: %+v", rep.Rows)
	}
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != 2 || back.Generated == "" {
		t.Fatalf("report round trip: %+v", back)
	}

	// Baseline comparisons.
	ok := row2
	if err := CompareBaseline(ok, path, 0.10, 3.0); err != nil {
		t.Fatalf("identical row flagged as regression: %v", err)
	}
	slow := row2
	slow.QueryPost.P99 = 200 // > 3x the 40ms baseline
	if err := CompareBaseline(slow, path, 0.10, 3.0); err == nil {
		t.Fatal("latency regression not flagged")
	}
	sparse := row2
	sparse.Degrees.Mean = 5 // way under the 9.5 baseline
	if err := CompareBaseline(sparse, path, 0.10, 3.0); err == nil {
		t.Fatal("degree collapse not flagged")
	}
	drift := row2
	drift.KillScheduleHash = "zzz" // same seed, different schedule
	if err := CompareBaseline(drift, path, 0.10, 3.0); err == nil {
		t.Fatal("determinism drift not flagged")
	}
	missing := row2
	missing.Nodes = 9999
	if err := CompareBaseline(missing, path, 0.10, 3.0); err == nil {
		t.Fatal("missing baseline row not flagged")
	}
}
