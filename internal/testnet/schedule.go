package testnet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// This file derives every random decision of a testnet run from the
// single driver seed, with the same splitmix64 construction the wave
// builder uses (internal/core/wave.go): one finalizer keyed by
// (seed, salt|index) per decision stream. Nothing here reads a clock
// or an OS rng, so a run's spawn order, bootstrap fan-out, kill wave
// and partition cut are bit-reproducible given -seed — the property
// the BENCH_testnet.json kill_schedule_hash records and CI pins.

// Stream salts keep the decision families disjoint.
const (
	saltNodeSeed  uint64 = 0x4e53 << 40 // per-process rng seeds
	saltSeedPeer  uint64 = 0x5350 << 40 // bootstrap target choice
	saltKillWave  uint64 = 0x4b57 << 40 // kill-wave shuffle
	saltPartition uint64 = 0x5054 << 40 // partition-cut shuffle
)

// mix64 is the splitmix64 finalizer (same constants as core's wave
// builder and search.QuerySeed).
func mix64(seed int64, q uint64) uint64 {
	x := uint64(seed) + (q+1)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NodeSeed derives process i's -rng-seed from the driver seed. It is
// never zero (zero tells makalu-node to self-seed from the clock,
// which is exactly what a reproducible run must avoid).
func NodeSeed(driverSeed int64, i int) int64 {
	s := int64(mix64(driverSeed, saltNodeSeed|uint64(i)))
	if s == 0 {
		s = 1
	}
	return s
}

// SeedPeer picks which earlier node process i bootstraps from: a
// deterministic draw over the first min(i, fanout) nodes, so the join
// load spreads across a seed pool instead of hammering node 0.
// Node 0 has no seed (returns -1).
func SeedPeer(driverSeed int64, i, fanout int) int {
	if i <= 0 {
		return -1
	}
	pool := i
	if fanout > 0 && fanout < pool {
		pool = fanout
	}
	return int(mix64(driverSeed, saltSeedPeer|uint64(i)) % uint64(pool))
}

// KillWave selects ⌊frac·n⌋ victims uniformly without replacement via
// a seeded Fisher–Yates pass, returning their indices sorted.
func KillWave(driverSeed int64, n int, frac float64) []int {
	k := int(frac * float64(n))
	if k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	perm := seededPerm(driverSeed, saltKillWave, n)
	victims := append([]int(nil), perm[:k]...)
	sort.Ints(victims)
	return victims
}

// PartitionGroups splits [0,n) into two groups, the first holding
// ⌊frac·n⌋ nodes, by a seeded shuffle. Both slices come back sorted.
func PartitionGroups(driverSeed int64, n int, frac float64) (a, b []int) {
	k := int(frac * float64(n))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	perm := seededPerm(driverSeed, saltPartition, n)
	a = append([]int(nil), perm[:k]...)
	b = append([]int(nil), perm[k:]...)
	sort.Ints(a)
	sort.Ints(b)
	return a, b
}

// ScheduleHash fingerprints a victim list — the reproducibility
// witness recorded in the report row: two runs with the same seed and
// size must produce the same hash.
func ScheduleHash(victims []int) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range victims {
		for b := 0; b < 8; b++ {
			buf[b] = byte(uint64(v) >> (8 * b))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// seededPerm is a Fisher–Yates permutation of [0,n) driven by a
// splitmix64 stream (modulo bias is negligible at testnet sizes).
func seededPerm(seed int64, salt uint64, n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(mix64(seed, salt|uint64(i)) % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}
