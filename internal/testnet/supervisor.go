package testnet

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"time"
)

// Proc is one supervised makalu-node process.
type Proc struct {
	Index      int
	Addr       string
	StatusPath string
	DenyPath   string
	LogPath    string

	cmd    *exec.Cmd
	exited chan struct{} // closed when Wait returns
	werr   error         // Wait's error, valid after exited closes
}

// PID returns the process id (0 before spawn).
func (p *Proc) PID() int {
	if p.cmd == nil || p.cmd.Process == nil {
		return 0
	}
	return p.cmd.Process.Pid
}

// Exited reports whether the process has terminated.
func (p *Proc) Exited() bool {
	select {
	case <-p.exited:
		return true
	default:
		return false
	}
}

// Supervisor owns the process table of a testnet run: it spawns
// makalu-node processes with per-node flags, tracks their exits
// through background Wait goroutines, delivers kill waves and
// signals, and tears everything down (SIGTERM, then SIGKILL for
// stragglers) at the end. All process state lives here; the scenario
// logic in Run only speaks in node indices.
type Supervisor struct {
	bin string
	dir string

	mu    sync.Mutex
	procs []*Proc
	down  map[int]bool // killed by the harness or observed exited
}

// NewSupervisor prepares the run directory layout (log/, status/,
// deny/) under dir.
func NewSupervisor(bin, dir string) (*Supervisor, error) {
	for _, sub := range []string{"log", "status", "deny"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	return &Supervisor{bin: bin, dir: dir, down: make(map[int]bool)}, nil
}

// Spawn launches node i listening on addr with the given extra args
// (the caller builds the flag list; the supervisor adds the output
// paths). The node's stdout/stderr go to log/node-<i>.log; the parent
// keeps no file descriptor open for it after the fork.
func (s *Supervisor) Spawn(i int, addr string, args []string) (*Proc, error) {
	p := &Proc{
		Index:      i,
		Addr:       addr,
		StatusPath: filepath.Join(s.dir, "status", fmt.Sprintf("node-%d.json", i)),
		DenyPath:   filepath.Join(s.dir, "deny", fmt.Sprintf("node-%d.txt", i)),
		LogPath:    filepath.Join(s.dir, "log", fmt.Sprintf("node-%d.log", i)),
		exited:     make(chan struct{}),
	}
	full := append([]string{
		"-listen", addr,
		"-metrics-json", p.StatusPath,
		"-deny-file", p.DenyPath,
	}, args...)
	logf, err := os.Create(p.LogPath)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(s.bin, full...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return nil, fmt.Errorf("testnet: spawn node %d: %w", i, err)
	}
	logf.Close() // the child holds its own descriptor
	p.cmd = cmd
	go func() {
		p.werr = cmd.Wait()
		close(p.exited)
	}()
	s.mu.Lock()
	for len(s.procs) <= i {
		s.procs = append(s.procs, nil)
	}
	s.procs[i] = p
	s.mu.Unlock()
	return p, nil
}

// Proc returns node i's process record (nil before spawn).
func (s *Supervisor) Proc(i int) *Proc {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.procs) {
		return nil
	}
	return s.procs[i]
}

// Kill SIGKILLs node i — a genuine silent crash: no signal handler
// runs, no final status is written, sockets die by kernel FIN/RST or
// silence, exactly the failure model the liveness layer must survive.
func (s *Supervisor) Kill(i int) error {
	p := s.Proc(i)
	if p == nil || p.cmd.Process == nil {
		return fmt.Errorf("testnet: kill: node %d not running", i)
	}
	s.mu.Lock()
	s.down[i] = true
	s.mu.Unlock()
	return p.cmd.Process.Kill()
}

// Signal sends sig to node i (SIGTERM for graceful shutdown, SIGHUP
// for deny-file reload).
func (s *Supervisor) Signal(i int, sig os.Signal) error {
	p := s.Proc(i)
	if p == nil || p.cmd.Process == nil || p.Exited() {
		return fmt.Errorf("testnet: signal: node %d not running", i)
	}
	return p.cmd.Process.Signal(sig)
}

// Alive reports whether node i is believed running: not harness-killed
// and not observed exited.
func (s *Supervisor) Alive(i int) bool {
	p := s.Proc(i)
	if p == nil || p.Exited() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.down[i]
}

// LiveIndices returns the indices of nodes still believed running.
func (s *Supervisor) LiveIndices() []int {
	s.mu.Lock()
	n := len(s.procs)
	s.mu.Unlock()
	var out []int
	for i := 0; i < n; i++ {
		if s.Alive(i) {
			out = append(out, i)
		}
	}
	return out
}

// StopAll gracefully terminates every live process: SIGTERM (the
// node's handler closes links with Bye and writes its final status),
// wait up to grace, then SIGKILL the stragglers and wait for every
// Wait goroutine to drain.
func (s *Supervisor) StopAll(grace time.Duration) {
	live := s.LiveIndices()
	for _, i := range live {
		s.Signal(i, syscall.SIGTERM)
	}
	deadline := time.Now().Add(grace)
	for _, i := range live {
		p := s.Proc(i)
		wait := time.Until(deadline)
		if wait < 0 {
			wait = 0
		}
		select {
		case <-p.exited:
		case <-time.After(wait):
			p.cmd.Process.Kill()
			<-p.exited
		}
		s.mu.Lock()
		s.down[i] = true
		s.mu.Unlock()
	}
	// Reap anything spawned but not in live (already down): ensure no
	// zombie outlives the run.
	s.mu.Lock()
	procs := append([]*Proc(nil), s.procs...)
	s.mu.Unlock()
	for _, p := range procs {
		if p == nil || p.Exited() {
			continue
		}
		p.cmd.Process.Kill()
		<-p.exited
	}
}

// WriteDenyList replaces node i's deny file (one address per line)
// and SIGHUPs the process so it reloads. An empty list heals the
// node: the file is truncated and the reload clears the in-memory
// set.
func (s *Supervisor) WriteDenyList(i int, addrs []string) error {
	p := s.Proc(i)
	if p == nil {
		return fmt.Errorf("testnet: deny: node %d not spawned", i)
	}
	var buf []byte
	for _, a := range addrs {
		buf = append(buf, a...)
		buf = append(buf, '\n')
	}
	tmp := p.DenyPath + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, p.DenyPath); err != nil {
		return err
	}
	return s.Signal(i, syscall.SIGHUP)
}
