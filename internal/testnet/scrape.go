package testnet

import (
	"sort"

	"makalu/internal/stats"
)

// Scrape collects the latest status snapshot of every listed node.
// Missing or unreadable files (a node that has not written yet, or
// died mid-run) are skipped; the returned map is keyed by node index.
func (s *Supervisor) Scrape(indices []int) map[int]NodeStatus {
	out := make(map[int]NodeStatus, len(indices))
	for _, i := range indices {
		p := s.Proc(i)
		if p == nil {
			continue
		}
		st, err := ReadNodeStatus(p.StatusPath)
		if err != nil {
			continue
		}
		out[i] = st
	}
	return out
}

// DegreeSummary condenses a scrape into the degree-distribution
// figures the report records.
type DegreeSummary struct {
	Sampled int     `json:"sampled"`
	Mean    float64 `json:"mean"`
	P10     float64 `json:"p10"`
	P50     float64 `json:"p50"`
	P90     float64 `json:"p90"`
	Min     int     `json:"min"`
	Max     int     `json:"max"`
}

// SummarizeDegrees computes the degree distribution over a scrape.
func SummarizeDegrees(snap map[int]NodeStatus) DegreeSummary {
	if len(snap) == 0 {
		return DegreeSummary{}
	}
	degs := make([]float64, 0, len(snap))
	mn, mx := int(^uint(0)>>1), 0
	for _, st := range snap {
		degs = append(degs, float64(st.Degree))
		if st.Degree < mn {
			mn = st.Degree
		}
		if st.Degree > mx {
			mx = st.Degree
		}
	}
	sort.Float64s(degs)
	return DegreeSummary{
		Sampled: len(degs),
		Mean:    stats.Mean(degs),
		P10:     stats.SortedPercentile(degs, 10),
		P50:     stats.SortedPercentile(degs, 50),
		P90:     stats.SortedPercentile(degs, 90),
		Min:     mn,
		Max:     mx,
	}
}

// CleanOf reports whether a status snapshot's neighbor set contains
// none of the given addresses (the dead peers have been evicted).
func CleanOf(st NodeStatus, dead map[string]bool) bool {
	for _, nb := range st.Neighbors {
		if dead[nb] {
			return false
		}
	}
	return true
}

// CrossEdges counts neighbor entries in snap that point from one
// address group into another — the partition-integrity probe: during
// a deny-list partition this must drain to zero, and after healing it
// must climb back above zero.
func CrossEdges(snap map[int]NodeStatus, group map[string]int) int {
	cross := 0
	for _, st := range snap {
		g, ok := group[st.Addr]
		if !ok {
			continue
		}
		for _, nb := range st.Neighbors {
			if og, ok := group[nb]; ok && og != g {
				cross++
			}
		}
	}
	return cross
}

// LatencySummary condenses a latency sample (milliseconds) into the
// tail figures the report records.
type LatencySummary struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50_ms"`
	P95   float64 `json:"p95_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

// SummarizeLatencies computes exact percentiles over a sample.
func SummarizeLatencies(ms []float64) LatencySummary {
	if len(ms) == 0 {
		return LatencySummary{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	return LatencySummary{
		Count: len(sorted),
		P50:   stats.SortedPercentile(sorted, 50),
		P95:   stats.SortedPercentile(sorted, 95),
		P99:   stats.SortedPercentile(sorted, 99),
		Max:   sorted[len(sorted)-1],
	}
}
