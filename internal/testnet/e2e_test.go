package testnet

import (
	"os"
	"testing"
	"time"
)

// TestHarnessEndToEnd runs the whole orchestration on a miniature
// network: 8 real makalu-node processes, a deny-list partition, a
// 25% SIGKILL wave, and driver-side queries. Assertions stay lenient
// (this is a plumbing test, not a performance gate — BENCH_testnet
// and the CI smoke own the numeric acceptance).
func TestHarnessEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	dir := t.TempDir()
	bin, err := BuildNodeBinary(dir)
	if err != nil {
		t.Fatal(err)
	}
	var logf func(string, ...any)
	if testing.Verbose() {
		logf = t.Logf
	}
	cfg := Config{
		Nodes:        8,
		Capacity:     4,
		Seed:         1,
		KillFraction: 0.25,
		Bin:          bin,
		Dir:          dir,
		// Offset by PID so parallel test invocations on one machine
		// don't collide on listen ports.
		BasePort:          23000 + (os.Getpid()%200)*40,
		ManageInterval:    150 * time.Millisecond,
		SpawnBatch:        4,
		SpawnStagger:      100 * time.Millisecond,
		SeedFanout:        3,
		ConvergeTimeout:   45 * time.Second,
		SettleTimeout:     30 * time.Second,
		Queries:           8,
		QueryTTL:          5,
		QueryTimeout:      3 * time.Second,
		PartitionFraction: 0.5,
		PartitionHold:     3 * time.Second,
		Logf:              logf,
	}
	row, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	if row.Nodes != 8 || row.Capacity != 4 || row.Seed != 1 {
		t.Fatalf("row identity wrong: %+v", row)
	}
	if row.SimMeanDegree <= 0 {
		t.Fatalf("no simulator reference recorded: %+v", row)
	}
	if row.Degrees.Sampled < 7 {
		t.Fatalf("converge scrape saw only %d of 8 nodes", row.Degrees.Sampled)
	}
	if row.Degrees.Mean <= 0 {
		t.Fatal("mean degree never rose above zero")
	}

	if row.Partition == nil {
		t.Fatal("partition phase requested but not recorded")
	}
	if row.Partition.GroupA+row.Partition.GroupB != 8 {
		t.Fatalf("partition groups do not cover the net: %+v", row.Partition)
	}
	if !row.Partition.PartitionedOK {
		t.Errorf("deny-list cut never drained cross edges: %+v", row.Partition)
	}

	if row.Killed != 2 || row.Survivors != 6 {
		t.Fatalf("kill wave killed %d / left %d, want 2 / 6", row.Killed, row.Survivors)
	}
	if row.KillScheduleHash == "" {
		t.Fatal("kill schedule hash missing")
	}
	// Reproducibility: the recorded hash must match a recomputation
	// from the same (seed, nodes, fraction).
	if want := ScheduleHash(KillWave(1, 8, 0.25)); row.KillScheduleHash != want {
		t.Fatalf("recorded kill hash %s != derived %s", row.KillScheduleHash, want)
	}
	if row.EvictWithinWindow < 0.5 {
		t.Errorf("only %.0f%% of survivors evicted dead neighbors within the window",
			row.EvictWithinWindow*100)
	}
	if row.PostKillDegrees.Sampled == 0 {
		t.Fatal("no post-kill degree scrape")
	}

	if row.QuerySuccessPre > 0 && row.QueryPre.Count == 0 {
		t.Fatalf("inconsistent pre-kill query stats: %+v", row)
	}
	if row.QuerySuccessPre <= 0 {
		t.Errorf("no pre-kill query succeeded: %+v", row.QueryPre)
	}
	if row.WallSeconds <= 0 {
		t.Fatal("wall time not recorded")
	}
}
