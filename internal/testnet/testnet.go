package testnet

import (
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"time"

	"makalu"
	"makalu/peer"
)

// objBase is the first hosted object id: node i stores objBase+i, so
// every query has a known holder and the driver can aim its load at
// live nodes only.
const objBase uint64 = 0xA0000

// ObjectOf returns the object id node i hosts.
func ObjectOf(i int) uint64 { return objBase + uint64(i) }

// Config parameterizes one testnet run.
type Config struct {
	// Nodes is the process count; Capacity every node's neighbor
	// budget. Required: Nodes >= 2.
	Nodes    int
	Capacity int
	// Seed drives every schedule decision (spawn fan-out, kill wave,
	// partition cut, per-process rng seeds). Equal seeds give equal
	// schedules — the reproducibility witness is Row.KillScheduleHash.
	Seed int64
	// KillFraction of the population dies by SIGKILL after the
	// pre-kill measurement (0 disables the wave).
	KillFraction float64

	// Bin is the makalu-node binary; Dir the run directory (logs,
	// status snapshots, deny files). Both required (the driver builds
	// and tempdirs them).
	Bin string
	Dir string
	// BasePort: node i listens on 127.0.0.1:BasePort+i. Fixed ports
	// make every address known before spawn, which the deny-list
	// partition needs. Default 21000.
	BasePort int

	// ManageInterval is each node's management period (default 500ms;
	// the in-process tests use 200ms, but hundreds of processes on one
	// machine want a calmer cadence). SnapshotInterval is how often
	// each node rewrites its status file (default = ManageInterval).
	ManageInterval   time.Duration
	SnapshotInterval time.Duration

	// Spawn pacing: SpawnBatch processes per SpawnStagger step
	// (defaults 25 and 200ms), bootstrapping through the first
	// SeedFanout nodes (default 8).
	SpawnBatch   int
	SpawnStagger time.Duration
	SeedFanout   int

	// JoinTimeout is each node's bootstrap-retry budget (default 30s).
	JoinTimeout time.Duration
	// RunFor is the -run duration handed to every node; it only needs
	// to outlive the scenario (default 1h — StopAll terminates the
	// processes long before).
	RunFor time.Duration

	// ConvergeTimeout bounds the wait for the overlay to reach the
	// simulator's mean degree (default 3m). SettleTimeout bounds the
	// post-kill eviction watch and the partition heal wait (default 2m).
	ConvergeTimeout time.Duration
	SettleTimeout   time.Duration

	// Query load: Queries per measurement phase (default 50), flooded
	// with QueryTTL (default 6), each waiting QueryTimeout for its
	// first hit (default 5s).
	Queries      int
	QueryTTL     int
	QueryTimeout time.Duration

	// PartitionFraction > 0 inserts a deny-list partition phase before
	// the kill wave: that fraction of nodes is cut from the rest for
	// PartitionHold (default 10s), then healed.
	PartitionFraction float64
	PartitionHold     time.Duration

	// Logf receives progress lines (default: discarded).
	Logf func(format string, args ...any)
}

func (cfg Config) withDefaults() Config {
	if cfg.Capacity == 0 {
		cfg.Capacity = 10
	}
	if cfg.BasePort == 0 {
		cfg.BasePort = 21000
	}
	if cfg.ManageInterval <= 0 {
		cfg.ManageInterval = 500 * time.Millisecond
	}
	if cfg.SnapshotInterval <= 0 {
		cfg.SnapshotInterval = cfg.ManageInterval
	}
	if cfg.SpawnBatch <= 0 {
		cfg.SpawnBatch = 25
	}
	if cfg.SpawnStagger <= 0 {
		cfg.SpawnStagger = 200 * time.Millisecond
	}
	if cfg.SeedFanout <= 0 {
		cfg.SeedFanout = 8
	}
	if cfg.JoinTimeout <= 0 {
		cfg.JoinTimeout = 30 * time.Second
	}
	if cfg.RunFor <= 0 {
		cfg.RunFor = time.Hour
	}
	if cfg.ConvergeTimeout <= 0 {
		cfg.ConvergeTimeout = 3 * time.Minute
	}
	if cfg.SettleTimeout <= 0 {
		cfg.SettleTimeout = 2 * time.Minute
	}
	if cfg.Queries == 0 {
		cfg.Queries = 50
	}
	if cfg.QueryTTL <= 0 {
		cfg.QueryTTL = 6
	}
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = 5 * time.Second
	}
	if cfg.PartitionHold <= 0 {
		cfg.PartitionHold = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return cfg
}

// Addr returns node i's fixed listen address.
func (cfg Config) Addr(i int) string {
	return fmt.Sprintf("127.0.0.1:%d", cfg.BasePort+i)
}

// livenessInterval is one full detect-and-evict cycle under the node
// defaults: the ping nonce must expire (PingTimeout = 2×manage) and
// EvictMisses (3) misses must accumulate, one per sweep. The
// acceptance bound — ≥95% of survivors clean within 5 of these — is
// measured against the snapshot each survivor writes itself, so the
// harness's scrape cadence never inflates a latency.
func (cfg Config) livenessInterval() time.Duration {
	return 2*cfg.ManageInterval + 3*cfg.ManageInterval
}

// BuildNodeBinary compiles cmd/makalu-node into dir and returns the
// binary path. It must run somewhere inside the module (the driver
// and the tests both do).
func BuildNodeBinary(dir string) (string, error) {
	bin := filepath.Join(dir, "makalu-node")
	cmd := exec.Command("go", "build", "-o", bin, "makalu/cmd/makalu-node")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("testnet: build makalu-node: %v\n%s", err, out)
	}
	return bin, nil
}

// Run executes one full scenario: spawn → converge → measure →
// (partition → heal) → kill wave → eviction watch → measure →
// graceful stop, and returns the aggregated report row.
func Run(cfg Config) (Row, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes < 2 {
		return Row{}, fmt.Errorf("testnet: need at least 2 nodes")
	}
	if cfg.Bin == "" || cfg.Dir == "" {
		return Row{}, fmt.Errorf("testnet: Config.Bin and Config.Dir are required")
	}
	start := time.Now()
	sup, err := NewSupervisor(cfg.Bin, cfg.Dir)
	if err != nil {
		return Row{}, err
	}
	defer sup.StopAll(10 * time.Second)

	row := Row{
		Nodes:            cfg.Nodes,
		Capacity:         cfg.Capacity,
		KillFraction:     cfg.KillFraction,
		Seed:             cfg.Seed,
		ManageIntervalMS: float64(cfg.ManageInterval) / float64(time.Millisecond),
	}

	// The convergence reference: what the simulator's overlay reaches
	// at equal size and homogeneous capacity.
	ref, err := makalu.New(makalu.Config{
		Nodes: cfg.Nodes, Seed: cfg.Seed,
		MinCapacity: cfg.Capacity, MaxCapacity: cfg.Capacity,
	})
	if err != nil {
		return row, err
	}
	row.SimMeanDegree = ref.MeanDegree()
	cfg.Logf("simulator reference: mean degree %.2f at n=%d capacity=%d", row.SimMeanDegree, cfg.Nodes, cfg.Capacity)

	// ---- Spawn wave -------------------------------------------------
	if err := spawnAll(cfg, sup); err != nil {
		return row, err
	}
	row.SpawnSeconds = time.Since(start).Seconds()
	cfg.Logf("spawned %d processes in %.1fs", cfg.Nodes, row.SpawnSeconds)

	// ---- Convergence ------------------------------------------------
	row.Degrees, row.Converged = waitConverge(cfg, sup, row.SimMeanDegree)
	cfg.Logf("converged=%v: mean degree %.2f (sim %.2f) over %d reporting nodes",
		row.Converged, row.Degrees.Mean, row.SimMeanDegree, row.Degrees.Sampled)

	// ---- Pre-kill query load ---------------------------------------
	var lat []float64
	row.QuerySuccessPre, lat, err = measureQueries(cfg, sup, sup.LiveIndices(), 1)
	if err != nil {
		return row, err
	}
	row.QueryPre = SummarizeLatencies(lat)
	cfg.Logf("pre-kill queries: success %.2f p50=%.1fms p99=%.1fms",
		row.QuerySuccessPre, row.QueryPre.P50, row.QueryPre.P99)

	// ---- Partition phase -------------------------------------------
	if cfg.PartitionFraction > 0 {
		pr, err := runPartition(cfg, sup)
		if err != nil {
			return row, err
		}
		row.Partition = pr
		cfg.Logf("partition: cut=%v (cross=%d) healed=%v (cross=%d)",
			pr.PartitionedOK, pr.CrossEdgesHeld, pr.HealedOK, pr.CrossEdgesHeal)
	}

	// ---- Kill wave --------------------------------------------------
	if cfg.KillFraction > 0 {
		victims := KillWave(cfg.Seed, cfg.Nodes, cfg.KillFraction)
		row.KillScheduleHash = ScheduleHash(victims)
		dead := make(map[string]bool, len(victims))
		for _, v := range victims {
			dead[cfg.Addr(v)] = true
			sup.Kill(v)
		}
		tKill := time.Now()
		row.Killed = len(victims)
		row.Survivors = cfg.Nodes - len(victims)
		cfg.Logf("killed %d/%d processes (schedule %s)", row.Killed, cfg.Nodes, row.KillScheduleHash)

		frac, evictLat := watchEvictions(cfg, sup, dead, tKill)
		row.EvictWindowMS = float64(5*cfg.livenessInterval()) / float64(time.Millisecond)
		row.EvictWithinWindow = frac
		el := SummarizeLatencies(evictLat)
		row.EvictP50MS, row.EvictP95MS = el.P50, el.P95
		cfg.Logf("evictions: %.1f%% of survivors clean within %.0fms (p50=%.0fms p95=%.0fms)",
			frac*100, row.EvictWindowMS, el.P50, el.P95)

		row.PostKillDegrees = SummarizeDegrees(sup.Scrape(sup.LiveIndices()))

		// ---- Post-kill query load ----------------------------------
		row.QuerySuccessPost, lat, err = measureQueries(cfg, sup, sup.LiveIndices(), 2)
		if err != nil {
			return row, err
		}
		row.QueryPost = SummarizeLatencies(lat)
		cfg.Logf("post-kill queries: success %.2f p50=%.1fms p99=%.1fms",
			row.QuerySuccessPost, row.QueryPost.P50, row.QueryPost.P99)
	} else {
		row.Survivors = cfg.Nodes
	}

	sup.StopAll(10 * time.Second)
	row.WallSeconds = time.Since(start).Seconds()
	return row, nil
}

// spawnAll launches every process in staggered batches, each
// bootstrapping through a deterministic pick from the seed pool, then
// verifies nothing died on arrival (a bind failure surfaces here, with
// the node's log tail).
func spawnAll(cfg Config, sup *Supervisor) error {
	for i := 0; i < cfg.Nodes; i++ {
		args := []string{
			"-capacity", strconv.Itoa(cfg.Capacity),
			"-rng-seed", strconv.FormatInt(NodeSeed(cfg.Seed, i), 10),
			"-manage-interval", cfg.ManageInterval.String(),
			"-metrics-interval", cfg.SnapshotInterval.String(),
			"-store", strconv.FormatUint(ObjectOf(i), 10),
			"-run", cfg.RunFor.String(),
			"-join-timeout", cfg.JoinTimeout.String(),
		}
		if s := SeedPeer(cfg.Seed, i, cfg.SeedFanout); s >= 0 {
			args = append(args, "-seed", cfg.Addr(s))
		}
		if _, err := sup.Spawn(i, cfg.Addr(i), args); err != nil {
			return err
		}
		if (i+1)%cfg.SpawnBatch == 0 {
			time.Sleep(cfg.SpawnStagger)
		}
	}
	time.Sleep(cfg.SpawnStagger)
	for i := 0; i < cfg.Nodes; i++ {
		if p := sup.Proc(i); p.Exited() {
			return fmt.Errorf("testnet: node %d (%s) exited during spawn: %s",
				i, cfg.Addr(i), logTail(p.LogPath))
		}
	}
	return nil
}

// waitConverge polls the status snapshots until the live mean degree
// is within 10% of the simulator's (and ≥90% of nodes report), or the
// degree has been stable for five polls, or the timeout passes.
func waitConverge(cfg Config, sup *Supervisor, simRef float64) (DegreeSummary, bool) {
	poll := cfg.SnapshotInterval
	if poll < 500*time.Millisecond {
		poll = 500 * time.Millisecond
	}
	deadline := time.Now().Add(cfg.ConvergeTimeout)
	var last DegreeSummary
	stable := 0
	for {
		snap := sup.Scrape(sup.LiveIndices())
		sum := SummarizeDegrees(snap)
		within := simRef > 0 && sum.Mean >= 0.9*simRef && sum.Mean <= 1.1*simRef
		reporting := float64(sum.Sampled) >= 0.9*float64(cfg.Nodes)
		if reporting && within {
			return sum, true
		}
		if reporting && last.Sampled > 0 && sum.Mean > 0 &&
			sum.Mean > 0.99*last.Mean && sum.Mean < 1.01*last.Mean {
			stable++
			if stable >= 5 {
				return sum, within
			}
		} else {
			stable = 0
		}
		last = sum
		if time.Now().After(deadline) {
			return sum, within
		}
		time.Sleep(poll)
	}
}

// measureQueries joins a fresh driver-side peer to the network over
// real TCP and floods cfg.Queries queries for objects hosted on live
// nodes, returning the success rate and per-success latency-to-first-
// hit samples in milliseconds. phase salts the driver's rng so the
// pre- and post-kill loads draw different targets.
func measureQueries(cfg Config, sup *Supervisor, live []int, phase uint64) (float64, []float64, error) {
	if len(live) == 0 {
		return 0, nil, fmt.Errorf("testnet: no live nodes to query")
	}
	nodeCfg := peer.DefaultNodeConfig(6, NodeSeed(cfg.Seed, cfg.Nodes+int(phase)))
	nodeCfg.ManageInterval = cfg.ManageInterval
	driver, err := peer.Start("127.0.0.1:0", nodeCfg)
	if err != nil {
		return 0, nil, err
	}
	defer driver.Close()
	// A loaded box can drop a single handshake on the floor; try a few
	// seeded picks before declaring the network unreachable.
	var bootErr error
	for attempt := uint64(0); ; attempt++ {
		if attempt == 5 {
			return 0, nil, fmt.Errorf("testnet: driver bootstrap: %w", bootErr)
		}
		boot := cfg.Addr(live[int(mix64(cfg.Seed, phase<<8|attempt)%uint64(len(live)))])
		if bootErr = driver.Bootstrap(boot, 10*time.Second); bootErr == nil {
			break
		}
		bootErr = fmt.Errorf("via %s: %w", boot, bootErr)
	}
	rng := rand.New(rand.NewSource(int64(mix64(cfg.Seed, 0xD1<<32|phase))))
	ok := 0
	var lat []float64
	for q := 0; q < cfg.Queries; q++ {
		target := live[rng.Intn(len(live))]
		obj := ObjectOf(target)
		drainHits(driver)
		t0 := time.Now()
		id := driver.Query(obj, cfg.QueryTTL)
		if awaitHit(driver, id, obj, cfg.QueryTimeout) {
			ok++
			lat = append(lat, float64(time.Since(t0))/float64(time.Millisecond))
		}
	}
	return float64(ok) / float64(cfg.Queries), lat, nil
}

func drainHits(n *peer.Node) {
	for {
		select {
		case <-n.Hits():
		default:
			return
		}
	}
}

func awaitHit(n *peer.Node, id, obj uint64, timeout time.Duration) bool {
	deadline := time.After(timeout)
	for {
		select {
		case h := <-n.Hits():
			if h.QueryID == id && h.Object == obj {
				return true
			}
		case <-deadline:
			return false
		}
	}
}

// watchEvictions polls the survivors' own snapshots after a kill wave
// and records, per survivor, the first snapshot timestamp at which its
// neighbor set contains no dead address. Returns the fraction clean
// within 5 liveness intervals and the per-survivor latency samples
// (ms) for those that cleaned before the settle timeout.
func watchEvictions(cfg Config, sup *Supervisor, dead map[string]bool, tKill time.Time) (float64, []float64) {
	window := 5 * cfg.livenessInterval()
	deadline := time.Now().Add(window + cfg.SettleTimeout)
	survivors := sup.LiveIndices()
	cleanAt := make(map[int]time.Time, len(survivors))
	poll := cfg.SnapshotInterval
	if poll < 200*time.Millisecond {
		poll = 200 * time.Millisecond
	}
	for time.Now().Before(deadline) && len(cleanAt) < len(survivors) {
		snap := sup.Scrape(survivors)
		for _, i := range survivors {
			if _, done := cleanAt[i]; done {
				continue
			}
			st, ok := snap[i]
			if !ok {
				continue
			}
			at := time.Unix(0, st.TimeUnixNano)
			if at.After(tKill) && CleanOf(st, dead) {
				cleanAt[i] = at
			}
		}
		if len(cleanAt) < len(survivors) {
			time.Sleep(poll)
		}
	}
	if len(survivors) == 0 {
		return 0, nil
	}
	within := 0
	var lat []float64
	for _, at := range cleanAt {
		d := at.Sub(tKill)
		if d < 0 {
			d = 0
		}
		lat = append(lat, float64(d)/float64(time.Millisecond))
		if d <= window {
			within++
		}
	}
	return float64(within) / float64(len(survivors)), lat
}

// runPartition cuts PartitionFraction of the population from the rest
// with symmetric deny lists, verifies the cross-group edges drain
// during the hold, then heals and waits for cross edges to reappear.
func runPartition(cfg Config, sup *Supervisor) (*PartitionResult, error) {
	ga, gb := PartitionGroups(cfg.Seed, cfg.Nodes, cfg.PartitionFraction)
	pr := &PartitionResult{
		Fraction: cfg.PartitionFraction,
		GroupA:   len(ga),
		GroupB:   len(gb),
	}
	group := make(map[string]int, cfg.Nodes)
	addrsA := make([]string, 0, len(ga))
	addrsB := make([]string, 0, len(gb))
	for _, i := range ga {
		group[cfg.Addr(i)] = 0
		addrsA = append(addrsA, cfg.Addr(i))
	}
	for _, i := range gb {
		group[cfg.Addr(i)] = 1
		addrsB = append(addrsB, cfg.Addr(i))
	}
	for _, i := range ga {
		if sup.Alive(i) {
			if err := sup.WriteDenyList(i, addrsB); err != nil {
				return pr, err
			}
		}
	}
	for _, i := range gb {
		if sup.Alive(i) {
			if err := sup.WriteDenyList(i, addrsA); err != nil {
				return pr, err
			}
		}
	}
	// Hold: poll until the cut drains or the hold expires.
	holdStart := time.Now()
	holdEnd := holdStart.Add(cfg.PartitionHold)
	cross := -1
	for time.Now().Before(holdEnd) {
		cross = CrossEdges(sup.Scrape(sup.LiveIndices()), group)
		if cross == 0 {
			break
		}
		time.Sleep(cfg.SnapshotInterval)
	}
	if cross != 0 {
		cross = CrossEdges(sup.Scrape(sup.LiveIndices()), group)
	}
	pr.CrossEdgesHeld = cross
	pr.PartitionedOK = cross == 0
	pr.HoldSeconds = time.Since(holdStart).Seconds()

	// Heal: clear every deny list and wait for cross edges to return.
	for _, i := range append(append([]int(nil), ga...), gb...) {
		if sup.Alive(i) {
			if err := sup.WriteDenyList(i, nil); err != nil {
				return pr, err
			}
		}
	}
	healStart := time.Now()
	healEnd := healStart.Add(cfg.SettleTimeout)
	for time.Now().Before(healEnd) {
		pr.CrossEdgesHeal = CrossEdges(sup.Scrape(sup.LiveIndices()), group)
		if pr.CrossEdgesHeal > 0 {
			break
		}
		time.Sleep(cfg.SnapshotInterval)
	}
	pr.HealedOK = pr.CrossEdgesHeal > 0
	pr.HealWaitSeconds = time.Since(healStart).Seconds()
	return pr, nil
}

// logTail returns the last few lines of a node's log for error
// reporting.
func logTail(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		return "(no log)"
	}
	const max = 512
	if len(data) > max {
		data = data[len(data)-max:]
	}
	return string(data)
}
