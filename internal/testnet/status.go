// Package testnet launches and supervises multi-process Makalu
// networks: hundreds of real makalu-node processes on one machine,
// speaking real TCP, driven through staged kill waves and deny-list
// partitions, with per-node metrics scraped from the status snapshots
// each process writes. It is the bridge from the in-process
// peer.Cluster (same kernel, fake scheduling) to production claims:
// here every node is its own OS process with its own sockets, its own
// GC, and its own death semantics (SIGKILL really is a silent crash).
package testnet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"makalu/internal/obs"
)

// NodeStatus is the snapshot document one makalu-node process writes
// at -metrics-json: identity, overlay view, and the obs registry. The
// file is replaced atomically (write temp + rename), so a scraper
// never reads a torn document; the embedded timestamp is the node's
// own clock at write time, which the harness uses to bound eviction
// latencies without trusting scrape timing.
type NodeStatus struct {
	Addr             string              `json:"addr"`
	PID              int                 `json:"pid"`
	Seed             int64               `json:"seed"`
	TimeUnixNano     int64               `json:"time_unix_ns"`
	Degree           int                 `json:"degree"`
	Neighbors        []string            `json:"neighbors"`
	QueriesForwarded uint64              `json:"queries_forwarded"`
	Evictions        uint64              `json:"evictions"`
	Final            bool                `json:"final"` // written on the way out (signal or -run expiry)
	Metrics          obs.MetricsSnapshot `json:"metrics"`
}

// WriteNodeStatus writes the status document atomically: marshal to a
// temp file in the same directory, then rename over the target. A
// SIGKILL between snapshots leaves the previous complete document in
// place, never a partial one.
func WriteNodeStatus(path string, st NodeStatus) error {
	out, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".status-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(out)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	return os.Rename(tmp.Name(), path)
}

// ReadNodeStatus parses one status snapshot.
func ReadNodeStatus(path string) (NodeStatus, error) {
	var st NodeStatus
	data, err := os.ReadFile(path)
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return st, fmt.Errorf("testnet: %s: %w", path, err)
	}
	return st, nil
}
