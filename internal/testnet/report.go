package testnet

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Row is one BENCH_testnet.json record: the aggregate outcome of one
// multi-process run at a given (nodes, capacity, kill) point.
type Row struct {
	Nodes            int     `json:"nodes"`
	Capacity         int     `json:"capacity"`
	KillFraction     float64 `json:"kill_fraction"`
	Seed             int64   `json:"seed"`
	ManageIntervalMS float64 `json:"manage_interval_ms"`

	// Convergence: live mean degree vs the simulator's at equal size
	// and capacity (the acceptance gate is within 10%).
	SimMeanDegree float64       `json:"sim_mean_degree"`
	Degrees       DegreeSummary `json:"degrees"`
	Converged     bool          `json:"converged"`
	SpawnSeconds  float64       `json:"spawn_seconds"`

	// Kill wave: which fraction died, the deterministic schedule's
	// fingerprint, and how fast the survivors cleaned up.
	Killed            int           `json:"killed"`
	Survivors         int           `json:"survivors"`
	KillScheduleHash  string        `json:"kill_schedule_hash"`
	EvictWindowMS     float64       `json:"evict_window_ms"`
	EvictWithinWindow float64       `json:"evict_within_window_fraction"`
	EvictP50MS        float64       `json:"evict_p50_ms"`
	EvictP95MS        float64       `json:"evict_p95_ms"`
	PostKillDegrees   DegreeSummary `json:"post_kill_degrees"`

	// Query load, measured by a driver-side live peer joined to the
	// network over real TCP: success rate and latency to first hit,
	// before and after the kill wave.
	QuerySuccessPre  float64        `json:"query_success_pre"`
	QuerySuccessPost float64        `json:"query_success_post"`
	QueryPre         LatencySummary `json:"query_latency_pre"`
	QueryPost        LatencySummary `json:"query_latency_post"`

	// Partition phase (nil when the run had none).
	Partition *PartitionResult `json:"partition,omitempty"`

	WallSeconds float64 `json:"wall_seconds"`
}

// PartitionResult records the deny-list partition phase: the cut must
// drain cross-group edges to zero, and the heal must bring them back.
type PartitionResult struct {
	Fraction        float64 `json:"fraction"`
	GroupA          int     `json:"group_a"`
	GroupB          int     `json:"group_b"`
	CrossEdgesHeld  int     `json:"cross_edges_during_hold"`
	CrossEdgesHeal  int     `json:"cross_edges_after_heal"`
	PartitionedOK   bool    `json:"partitioned"`
	HealedOK        bool    `json:"healed"`
	HoldSeconds     float64 `json:"hold_seconds"`
	HealWaitSeconds float64 `json:"heal_wait_seconds"`
}

// Report is the BENCH_testnet.json document.
type Report struct {
	Generated string `json:"generated"`
	Host      string `json:"host,omitempty"`
	Rows      []Row  `json:"rows"`
}

// LoadReport parses an existing BENCH_testnet.json.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("testnet: %s: %w", path, err)
	}
	return &r, nil
}

// MergeRow inserts row into the report, replacing any existing row
// with the same (nodes, capacity, kill_fraction) point so repeated
// runs update in place.
func (r *Report) MergeRow(row Row) {
	for i, old := range r.Rows {
		if old.Nodes == row.Nodes && old.Capacity == row.Capacity && old.KillFraction == row.KillFraction {
			r.Rows[i] = row
			return
		}
	}
	r.Rows = append(r.Rows, row)
}

// WriteFile writes the report as indented JSON, stamping Generated.
func (r *Report) WriteFile(path string) error {
	r.Generated = time.Now().UTC().Format(time.RFC3339)
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}

// CompareBaseline checks row against the committed baseline report,
// mirroring the bench-regression gate: the matching row (same nodes,
// capacity, kill fraction) must exist, the converged mean degree must
// sit within degTol of the baseline's, and the post-kill query p99
// must not exceed latFactor times the baseline's. Returns an error
// describing the first regression found.
func CompareBaseline(row Row, baselinePath string, degTol, latFactor float64) error {
	base, err := LoadReport(baselinePath)
	if err != nil {
		return err
	}
	for _, b := range base.Rows {
		if b.Nodes != row.Nodes || b.Capacity != row.Capacity || b.KillFraction != row.KillFraction {
			continue
		}
		if b.Degrees.Mean > 0 {
			rel := row.Degrees.Mean/b.Degrees.Mean - 1
			if rel < -degTol || rel > degTol {
				return fmt.Errorf("testnet: mean degree %.2f deviates %+.1f%% from baseline %.2f (tolerance ±%.0f%%)",
					row.Degrees.Mean, rel*100, b.Degrees.Mean, degTol*100)
			}
		}
		if b.KillScheduleHash != "" && b.Seed == row.Seed && b.KillScheduleHash != row.KillScheduleHash {
			return fmt.Errorf("testnet: kill schedule hash %s != baseline %s at equal seed — determinism regression",
				row.KillScheduleHash, b.KillScheduleHash)
		}
		if b.QueryPost.P99 > 0 && row.QueryPost.P99 > latFactor*b.QueryPost.P99 {
			return fmt.Errorf("testnet: post-kill query p99 %.1fms > %.1fx baseline %.1fms",
				row.QueryPost.P99, latFactor, b.QueryPost.P99)
		}
		return nil
	}
	return fmt.Errorf("testnet: no baseline row for nodes=%d capacity=%d kill=%.2f in %s",
		row.Nodes, row.Capacity, row.KillFraction, baselinePath)
}
