package makalu

import (
	"fmt"
	"math/rand"

	"makalu/internal/search"
)

// SearchResult reports one query execution.
type SearchResult struct {
	Found         bool // a matching node was reached
	Messages      int  // overlay transmissions used
	Duplicates    int  // redundant deliveries (flooding only)
	NodesVisited  int  // distinct nodes reached
	FirstMatchHop int  // hop distance of the first match (-1 if none)
	MatchesFound  int  // matching nodes reached
}

func fromInternal(r search.Result) SearchResult {
	return SearchResult{
		Found:         r.Success,
		Messages:      r.Messages,
		Duplicates:    r.Duplicates,
		NodesVisited:  r.Visited,
		FirstMatchHop: r.FirstMatchHop,
		MatchesFound:  r.MatchesFound,
	}
}

// Flood runs a TTL-controlled flooding search from src over the alive
// overlay: the paper's wildcard/attribute search mechanism. match is
// the node predicate (use Content.Matcher or Content.WildcardMatcher).
func (ov *Overlay) Flood(src, ttl int, match func(node int) bool) SearchResult {
	if !ov.core.Alive(src) {
		return SearchResult{FirstMatchHop: -1}
	}
	f := search.NewFlooder(ov.graphSnapshot())
	return fromInternal(f.Flood(src, ttl, search.Matcher(match)))
}

// RandomWalkSearch runs a k-walker random walk from src (the
// related-work baseline of Lv et al.).
func (ov *Overlay) RandomWalkSearch(src, walkers, maxSteps int, match func(node int) bool, seed int64) SearchResult {
	cfg := search.WalkConfig{Walkers: walkers, MaxSteps: maxSteps, CheckInterval: 4}
	rng := rand.New(rand.NewSource(seed))
	return fromInternal(search.RandomWalk(ov.graphSnapshot(), src, cfg, search.Matcher(match), rng))
}

// ExpandingRingSearch repeats floods with growing TTL until the query
// resolves (TTL-control per Chang & Liu).
func (ov *Overlay) ExpandingRingSearch(src, maxTTL int, match func(node int) bool, seed int64) SearchResult {
	f := search.NewFlooder(ov.graphSnapshot())
	cfg := search.RingConfig{StartTTL: 1, Step: 1, MaxTTL: maxTTL}
	rng := rand.New(rand.NewSource(seed))
	return fromInternal(search.ExpandingRing(f, src, cfg, search.Matcher(match), rng))
}

// IdentifierIndex is the attenuated-Bloom-filter routing state for
// exact identifier search (§4.6). Build one per content placement;
// rebuild after overlay mutations or content changes.
type IdentifierIndex struct {
	net    *search.ABFNetwork
	router *search.ABFRouter
	rng    *rand.Rand
}

// BuildIdentifierIndex computes every node's attenuated Bloom filter
// hierarchy (depth 3, the paper's setting) over the current overlay
// snapshot and the given content placement.
func (ov *Overlay) BuildIdentifierIndex(c *Content) (*IdentifierIndex, error) {
	if c == nil {
		return nil, fmt.Errorf("makalu: nil content")
	}
	net, err := search.BuildABFNetwork(ov.graphSnapshot(), c.store, search.DefaultABFConfig())
	if err != nil {
		return nil, err
	}
	return &IdentifierIndex{
		net:    net,
		router: search.NewABFRouter(net),
		rng:    rand.New(rand.NewSource(ov.cfg.Seed + 23)),
	}, nil
}

// Lookup routes an exact-identifier query from src with the given hop
// budget, following the Bloom-filter potential function at each hop.
func (ix *IdentifierIndex) Lookup(src int, obj uint64, ttl int) SearchResult {
	return fromInternal(ix.router.Lookup(src, obj, ttl, ix.rng))
}

// MemoryBytes reports the total filter state the index keeps across
// all nodes.
func (ix *IdentifierIndex) MemoryBytes() int64 { return ix.net.MemoryBytes() }
