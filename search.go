package makalu

import (
	"fmt"
	"math/rand"

	"makalu/internal/content"
	"makalu/internal/graph"
	"makalu/internal/obs"
	"makalu/internal/search"
)

// SearchResult reports one query execution.
type SearchResult struct {
	Found         bool // a matching node was reached
	Messages      int  // overlay transmissions used
	Duplicates    int  // redundant deliveries (flooding only)
	NodesVisited  int  // distinct nodes reached
	FirstMatchHop int  // hop distance of the first match (-1 if none)
	MatchesFound  int  // matching nodes reached
}

func fromInternal(r search.Result) SearchResult {
	return SearchResult{
		Found:         r.Success,
		Messages:      r.Messages,
		Duplicates:    r.Duplicates,
		NodesVisited:  r.Visited,
		FirstMatchHop: r.FirstMatchHop,
		MatchesFound:  r.MatchesFound,
	}
}

// Flood runs a TTL-controlled flooding search from src over the alive
// overlay: the paper's wildcard/attribute search mechanism. match is
// the node predicate (use Content.Matcher or Content.WildcardMatcher).
func (ov *Overlay) Flood(src, ttl int, match func(node int) bool) SearchResult {
	if !ov.core.Alive(src) {
		return SearchResult{FirstMatchHop: -1}
	}
	f := search.NewFlooder(ov.graphSnapshot())
	return fromInternal(f.Flood(src, ttl, search.Matcher(match)))
}

// RandomWalkSearch runs a k-walker random walk from src (the
// related-work baseline of Lv et al.).
func (ov *Overlay) RandomWalkSearch(src, walkers, maxSteps int, match func(node int) bool, seed int64) SearchResult {
	cfg := search.WalkConfig{Walkers: walkers, MaxSteps: maxSteps, CheckInterval: 4}
	rng := rand.New(rand.NewSource(seed))
	return fromInternal(search.RandomWalk(ov.graphSnapshot(), src, cfg, search.Matcher(match), rng))
}

// ExpandingRingSearch repeats floods with growing TTL until the query
// resolves (TTL-control per Chang & Liu).
func (ov *Overlay) ExpandingRingSearch(src, maxTTL int, match func(node int) bool, seed int64) SearchResult {
	f := search.NewFlooder(ov.graphSnapshot())
	cfg := search.RingConfig{StartTTL: 1, Step: 1, MaxTTL: maxTTL}
	rng := rand.New(rand.NewSource(seed))
	return fromInternal(search.ExpandingRing(f, src, cfg, search.Matcher(match), rng))
}

// BatchOptions sizes a parallel query batch. Queries are sharded over
// Workers goroutines (0 = GOMAXPROCS, 1 = sequential), each query
// seeded deterministically from (Seed, query index), so the returned
// stats are identical at every worker count.
type BatchOptions struct {
	Queries int
	Workers int
	Seed    int64
	// Histograms enables the per-query distribution summaries in the
	// returned BatchStats (Latency/Hops/Messages). The headline stats
	// stay bit-identical with or without it; Latency is wall time and
	// therefore varies run to run.
	Histograms bool
}

// obs returns the side-channel collector for this batch, nil when
// histograms are off (the zero-overhead path).
func (opt BatchOptions) obs() *search.BatchObs {
	if !opt.Histograms {
		return nil
	}
	return search.NewBatchObs()
}

// DistSummary is a plain-value summary of one per-query distribution.
// Quantiles come from power-of-two buckets: each reported quantile is
// the bucket upper bound, i.e. exact within a factor of two.
type DistSummary struct {
	Count uint64
	Mean  float64
	P50   float64
	P95   float64
	P99   float64
	P999  float64
	Max   int64
}

// BatchStats summarizes a query batch with the metrics the paper
// reports per experiment cell. The distribution fields are zero unless
// BatchOptions.Histograms was set: Latency is per-query wall time in
// nanoseconds, Hops the first-match hop over successes, Messages the
// messages sent per query.
type BatchStats struct {
	Queries        int
	SuccessRate    float64
	MeanMessages   float64
	MeanHops       float64 // over successful queries
	MeanVisited    float64
	DuplicateRatio float64
	Latency        DistSummary
	Hops           DistSummary
	Messages       DistSummary
}

func distFrom(h *obs.Histogram) DistSummary {
	s := h.Snapshot()
	return DistSummary{Count: s.Count, Mean: s.Mean, P50: s.P50, P95: s.P95, P99: s.P99, P999: s.P999, Max: s.Max}
}

func statsFrom(agg *search.Aggregate, o *search.BatchObs) BatchStats {
	st := BatchStats{
		Queries:        agg.Queries,
		SuccessRate:    agg.SuccessRate(),
		MeanMessages:   agg.MeanMessages(),
		MeanHops:       agg.MeanHops(),
		MeanVisited:    agg.MeanVisited(),
		DuplicateRatio: agg.DuplicateRatio(),
	}
	if o != nil {
		st.Latency = distFrom(o.Latency)
		st.Hops = distFrom(o.Hops)
		st.Messages = distFrom(o.Messages)
	}
	return st
}

// FloodBatch runs opt.Queries flooding searches over the current
// overlay snapshot: each query floods from a uniform random source for
// a uniform random object of c.
func (ov *Overlay) FloodBatch(c *Content, ttl int, opt BatchOptions) BatchStats {
	g := ov.graphSnapshot()
	o := opt.obs()
	br := &search.BatchRunner{Graph: g, Workers: opt.Workers, Seed: opt.Seed, Obs: o}
	return statsFrom(br.Run(opt.Queries, func(k *search.Kernel, q int, rng *rand.Rand) search.Result {
		obj := c.store.RandomObject(rng)
		src := rng.Intn(g.N())
		return k.Flooder().Flood(src, ttl, func(u int) bool { return c.store.Has(u, obj) })
	}), o)
}

// RandomWalkBatch runs opt.Queries k-walker random-walk searches over
// the current overlay snapshot.
func (ov *Overlay) RandomWalkBatch(c *Content, walkers, maxSteps int, opt BatchOptions) BatchStats {
	g := ov.graphSnapshot()
	cfg := search.WalkConfig{Walkers: walkers, MaxSteps: maxSteps, CheckInterval: 4}
	o := opt.obs()
	br := &search.BatchRunner{Graph: g, Workers: opt.Workers, Seed: opt.Seed, Obs: o}
	return statsFrom(br.Run(opt.Queries, func(k *search.Kernel, q int, rng *rand.Rand) search.Result {
		obj := c.store.RandomObject(rng)
		src := rng.Intn(g.N())
		return k.Walker().Random(src, cfg, func(u int) bool { return c.store.Has(u, obj) }, rng)
	}), o)
}

// ExpandingRingBatch runs opt.Queries expanding-ring searches over the
// current overlay snapshot.
func (ov *Overlay) ExpandingRingBatch(c *Content, maxTTL int, opt BatchOptions) BatchStats {
	g := ov.graphSnapshot()
	cfg := search.RingConfig{StartTTL: 1, Step: 1, MaxTTL: maxTTL}
	o := opt.obs()
	br := &search.BatchRunner{Graph: g, Workers: opt.Workers, Seed: opt.Seed, Obs: o}
	return statsFrom(br.Run(opt.Queries, func(k *search.Kernel, q int, rng *rand.Rand) search.Result {
		obj := c.store.RandomObject(rng)
		src := rng.Intn(g.N())
		return search.ExpandingRing(k.Flooder(), src, cfg, func(u int) bool { return c.store.Has(u, obj) }, rng)
	}), o)
}

// IdentifierIndex is the attenuated-Bloom-filter routing state for
// exact identifier search (§4.6). Build one per content placement;
// rebuild after overlay mutations or content changes.
type IdentifierIndex struct {
	g      *graph.Graph
	store  *content.Store
	net    *search.ABFNetwork
	router *search.ABFRouter
	rng    *rand.Rand
}

// BuildIdentifierIndex computes every node's attenuated Bloom filter
// hierarchy (depth 3, the paper's setting) over the current overlay
// snapshot and the given content placement.
func (ov *Overlay) BuildIdentifierIndex(c *Content) (*IdentifierIndex, error) {
	if c == nil {
		return nil, fmt.Errorf("makalu: nil content")
	}
	g := ov.graphSnapshot()
	net, err := search.BuildABFNetwork(g, c.store, search.DefaultABFConfig())
	if err != nil {
		return nil, err
	}
	return &IdentifierIndex{
		g:      g,
		store:  c.store,
		net:    net,
		router: search.NewABFRouter(net),
		rng:    rand.New(rand.NewSource(ov.cfg.Seed + 23)),
	}, nil
}

// Lookup routes an exact-identifier query from src with the given hop
// budget, following the Bloom-filter potential function at each hop.
func (ix *IdentifierIndex) Lookup(src int, obj uint64, ttl int) SearchResult {
	return fromInternal(ix.router.Lookup(src, obj, ttl, ix.rng))
}

// LookupBatch runs opt.Queries identifier lookups, each from a uniform
// random source for a uniform random placed object, sharded over the
// batch engine (the routing state is shared read-only; each worker
// owns its own router scratch).
func (ix *IdentifierIndex) LookupBatch(ttl int, opt BatchOptions) BatchStats {
	o := opt.obs()
	br := &search.BatchRunner{Graph: ix.g, Workers: opt.Workers, Seed: opt.Seed, Obs: o}
	return statsFrom(br.Run(opt.Queries, func(k *search.Kernel, q int, rng *rand.Rand) search.Result {
		obj := ix.store.RandomObject(rng)
		src := rng.Intn(ix.g.N())
		return k.ABF(ix.net).Lookup(src, obj, ttl, rng)
	}), o)
}

// MemoryBytes reports the total filter state the index keeps across
// all nodes.
func (ix *IdentifierIndex) MemoryBytes() int64 { return ix.net.MemoryBytes() }
