// Command makalu-topology generates an overlay topology and analyzes
// its structure: degree statistics, path lengths, connectivity, and
// optionally the full (normalized) Laplacian spectrum or an edge-list
// dump for external tools.
//
// Usage:
//
//	makalu-topology -topo makalu -n 10000 -analyze paths,connectivity
//	makalu-topology -topo v06 -n 5000 -dump edges.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"makalu/internal/core"
	"makalu/internal/graph"
	"makalu/internal/netmodel"
	"makalu/internal/spectral"
	"makalu/internal/topology"
)

func main() {
	var (
		topo    = flag.String("topo", "makalu", "topology: makalu, kregular, v04, v06, er")
		n       = flag.Int("n", 2000, "node count")
		k       = flag.Int("k", 10, "degree for kregular / mean degree hint for er")
		seed    = flag.Int64("seed", 1, "random seed")
		analyze = flag.String("analyze", "degrees,paths", "comma list: degrees, paths, connectivity, spectrum")
		sources = flag.Int("sources", 500, "path-analysis sample sources (0 = exact)")
		dump    = flag.String("dump", "", "write edge list (one 'u v' pair per line) to this file")
	)
	flag.Parse()

	g, err := buildTopology(*topo, *n, *k, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s topology: %d nodes, %d edges\n", *topo, g.N(), g.M())

	for _, a := range strings.Split(*analyze, ",") {
		switch strings.TrimSpace(a) {
		case "degrees":
			fmt.Printf("degrees: mean=%.2f min=%d max=%d\n",
				g.MeanDegree(), g.MinDegree(), g.MaxDegree())
			hist := g.DegreeHistogram()
			for d, c := range hist {
				if c > 0 && (d <= 3 || c*50 >= g.N()) {
					fmt.Printf("  deg %3d: %d nodes\n", d, c)
				}
			}
		case "paths":
			var st graph.PathStats
			if *sources > 0 && *sources < g.N() {
				st = g.SampledPathStats(*sources, rand.New(rand.NewSource(*seed+9)))
			} else {
				st = g.AllPathStats()
			}
			fmt.Printf("paths: mean hops=%.3f mean cost=%.3f diameter=%d (from %d sources)\n",
				st.MeanHops, st.MeanCost, st.HopDiameter, st.Sources)
			if st.Disconnected {
				fmt.Printf("  WARNING: %d unreachable pairs\n", st.UnreachedPairs)
			}
		case "connectivity":
			_, sizes := g.Components()
			fmt.Printf("components: %d\n", len(sizes))
			l1, err := spectral.AlgebraicConnectivity(g, 250, *seed+11)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lambda1: %v\n", err)
				continue
			}
			fmt.Printf("algebraic connectivity lambda1 = %.4f (d_min = %d)\n", l1, g.MinDegree())
		case "spectrum":
			if g.N() > 2000 {
				fmt.Fprintln(os.Stderr, "spectrum: dense eigensolver capped at 2000 nodes; use -n <= 2000")
				continue
			}
			spec, err := spectral.NormalizedSpectrum(g)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spectrum: %v\n", err)
				continue
			}
			fmt.Printf("normalized Laplacian: mult(0)=%d mult(1)=%d lambda_max=%.4f\n",
				spectral.Multiplicity(spec, 0, 1e-8),
				spectral.Multiplicity(spec, 1, 1e-8),
				spec[len(spec)-1])
		default:
			fmt.Fprintf(os.Stderr, "unknown analysis %q\n", a)
		}
	}

	if *dump != "" {
		if err := dumpEdges(g, *dump); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("edge list written to %s\n", *dump)
	}
}

func buildTopology(name string, n, k int, seed int64) (*graph.Graph, error) {
	euc := netmodel.NewEuclidean(n, 1000, seed)
	w := func(u, v int) float64 { return euc.Latency(u, v) }
	switch name {
	case "makalu":
		o, err := core.Build(n, core.DefaultConfig(euc, seed))
		if err != nil {
			return nil, err
		}
		return o.Freeze(), nil
	case "kregular":
		g, err := topology.KRegular(n, k, seed)
		if err != nil {
			return nil, err
		}
		return g.Freeze(w), nil
	case "v04":
		cfg := topology.DefaultPowerLaw()
		cfg.Seed = seed
		return topology.PowerLaw(n, cfg).Freeze(w), nil
	case "v06":
		cfg := topology.DefaultTwoTier()
		cfg.Seed = seed
		return topology.NewTwoTier(n, cfg).Graph.Freeze(w), nil
	case "er":
		return topology.ErdosRenyi(n, n*k/2, seed).Freeze(w), nil
	default:
		return nil, fmt.Errorf("unknown topology %q (want makalu, kregular, v04, v06, er)", name)
	}
}

func dumpEdges(g *graph.Graph, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				fmt.Fprintf(w, "%d %d\n", u, v)
			}
		}
	}
	return w.Flush()
}
