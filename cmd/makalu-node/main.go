// Command makalu-node runs one live Makalu peer: it listens on a TCP
// address, optionally joins an existing network through a seed peer,
// stores objects, and can issue flooding queries. Several instances
// on one machine (or many) form a real Makalu network; the
// makalu-testnet driver supervises hundreds of them.
//
// Usage:
//
//	# first node
//	makalu-node -listen 127.0.0.1:4001 -store 1001,1002
//	# join and query
//	makalu-node -listen 127.0.0.1:4002 -seed 127.0.0.1:4001 -query 1001 -ttl 5
//	# long-running member with periodic status snapshots
//	makalu-node -listen 127.0.0.1:4003 -seed 127.0.0.1:4001 -run 60s \
//	    -metrics-json status.json -metrics-interval 1s
//	# query-serving service mode: build an in-memory overlay and serve
//	# cached lookups over HTTP and the raw TCP line protocol
//	makalu-node -serve-http 127.0.0.1:8080 -serve-tcp 127.0.0.1:8081 \
//	    -serve-nodes 50000 -serve-cache 4096 -rng-seed 1
//
// Lifecycle: SIGINT/SIGTERM shut the node down gracefully — links get
// a Bye, the listener closes, and the final status snapshot (degree,
// neighbors, obs metrics) is written to -metrics-json. SIGHUP reloads
// -deny-file, letting a driver repartition a live network without
// restarting processes. Bootstrap failures are retried with capped
// jittered backoff until -join-timeout: a joiner that dials before
// its seed finishes binding (the normal case under a process driver)
// recovers instead of dying.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"makalu/internal/obs"
	"makalu/internal/testnet"
	"makalu/peer"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		listen      = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		seedAddr    = flag.String("seed", "", "seed peer to bootstrap from")
		capacity    = flag.Int("capacity", 10, "maximum neighbor count")
		store       = flag.String("store", "", "comma-separated object ids to host (decimal or 0x hex)")
		query       = flag.String("query", "", "object id to search for (decimal or 0x hex)")
		ttl         = flag.Int("ttl", 5, "query TTL")
		wait        = flag.Duration("wait", 5*time.Second, "how long to await query hits")
		runFor      = flag.Duration("run", 0, "stay online this long after setup (0 = exit after query)")
		rngSeed     = flag.Int64("rng-seed", 0, "local randomness seed (0 = derive from the clock; the effective seed is always logged, and a driver passes explicit per-process seeds for reproducible runs)")
		manage      = flag.Duration("manage-interval", 200*time.Millisecond, "management loop period (pings, refill, prune)")
		joinTimeout = flag.Duration("join-timeout", 30*time.Second, "total budget for bootstrap retries before giving up")
		metricsPath = flag.String("metrics-json", "", "write a status snapshot (identity, neighbors, obs metrics) as JSON to this path at exit")
		metricsIvl  = flag.Duration("metrics-interval", 0, "additionally rewrite -metrics-json this often while running (0 = only at exit)")
		denyFlag    = flag.String("deny", "", "comma-separated peer addresses to refuse (never dialed or accepted)")
		denyFile    = flag.String("deny-file", "", "file with one denied peer address per line (# comments ok); reloaded on SIGHUP")
	)
	var sf serveFlags
	registerServeFlags(&sf)
	flag.Parse()

	// Reproducibility fix: the seed used is always explicit in the log.
	// A driver derives per-process seeds from its own seed (splitmix64)
	// and passes them here; 0 self-seeds from the clock for ad-hoc use.
	eff := *rngSeed
	if eff == 0 {
		eff = time.Now().UnixNano()
	}
	fmt.Printf("rng seed %d\n", eff)

	if sf.active() {
		return serveMain(&sf, eff)
	}
	warnSingleCPUConfig(*manage)

	objs, err := parseIDList(*store)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -store list: %v\n", err)
		return 2
	}
	var queryObj uint64
	if *query != "" {
		queryObj, err = parseID(*query)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad query id %q: %v\n", *query, err)
			return 2
		}
	}
	denied, err := resolveDeny(*denyFlag, *denyFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deny list: %v\n", err)
		return 2
	}

	var reg *obs.Registry
	if *metricsPath != "" {
		reg = obs.NewRegistry()
	}
	cfg := peer.Config{
		Capacity:       *capacity,
		Alpha:          1,
		Beta:           1,
		ManageInterval: *manage,
		Seed:           eff,
		Metrics:        reg,
		DenyPeers:      denied,
	}
	node, err := peer.Start(*listen, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("node listening on %s (capacity %d)\n", node.Addr(), *capacity)

	a := &app{
		node:       node,
		reg:        reg,
		seed:       eff,
		statusPath: *metricsPath,
		denyFlag:   *denyFlag,
		denyFile:   *denyFile,
		sigs:       make(chan os.Signal, 2),
	}
	// Signal fix: without this, a driver's SIGTERM bypassed every
	// deferred Close — listeners leaked and the metrics dump never
	// happened. Shutdown now always goes through a.shutdown.
	signal.Notify(a.sigs, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	if *metricsIvl > 0 && *metricsPath != "" {
		t := time.NewTicker(*metricsIvl)
		defer t.Stop()
		a.statusTick = t.C
	}

	for _, obj := range objs {
		node.AddObject(obj)
		fmt.Printf("hosting object %#x\n", obj)
	}
	a.writeStatus(false) // early snapshot: the driver learns the address

	if *seedAddr != "" {
		if ok, code := a.bootstrap(*seedAddr, *joinTimeout); !ok {
			return code
		}
		fmt.Printf("joined network: %d neighbors %v\n", node.Degree(), node.Neighbors())
		a.writeStatus(false)
	}

	if *query != "" {
		id := node.Query(queryObj, *ttl)
		fmt.Printf("query %#x for object %#x (TTL %d)...\n", id, queryObj, *ttl)
		hits, done := a.collectHits(*wait)
		if hits == 0 {
			fmt.Println("no hits")
		}
		if done {
			return a.shutdown()
		}
	}

	if *runFor > 0 {
		fmt.Printf("staying online for %v...\n", *runFor)
		a.serve(*runFor)
	}
	return a.shutdown()
}

// app bundles the running node with its signal and status plumbing.
type app struct {
	node       *peer.Node
	reg        *obs.Registry
	seed       int64
	statusPath string
	denyFlag   string
	denyFile   string
	sigs       chan os.Signal
	statusTick <-chan time.Time // nil when periodic snapshots are off
}

// handleSig processes one signal: SIGHUP reloads the deny file and
// keeps running; SIGINT/SIGTERM request shutdown.
func (a *app) handleSig(s os.Signal) (down bool) {
	if s == syscall.SIGHUP {
		denied, err := resolveDeny(a.denyFlag, a.denyFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deny reload: %v\n", err)
			return false
		}
		a.node.SetDenied(denied)
		fmt.Printf("deny list reloaded: %d entries\n", len(denied))
		return false
	}
	fmt.Printf("received %v, shutting down\n", s)
	return true
}

// shutdown is the single exit path: final status snapshot (while the
// neighbor table is still live), then a graceful Close (Bye to every
// neighbor, listener closed, goroutines drained).
func (a *app) shutdown() int {
	a.writeStatus(true)
	a.node.Close()
	return 0
}

// writeStatus dumps the node's current status document (atomically)
// when -metrics-json is set.
func (a *app) writeStatus(final bool) {
	if a.statusPath == "" {
		return
	}
	st := testnet.NodeStatus{
		Addr:             a.node.Addr(),
		PID:              os.Getpid(),
		Seed:             a.seed,
		TimeUnixNano:     time.Now().UnixNano(),
		Degree:           a.node.Degree(),
		Neighbors:        a.node.Neighbors(),
		QueriesForwarded: a.node.QueriesForwarded(),
		Evictions:        a.node.Stats().Evictions,
		Final:            final,
		Metrics:          a.reg.Snapshot(),
	}
	if err := testnet.WriteNodeStatus(a.statusPath, st); err != nil {
		fmt.Fprintf(os.Stderr, "metrics-json: %v\n", err)
	}
}

// bootstrap joins via the seed with capped jittered backoff.
// Bugfix: a joiner used to die permanently (os.Exit(1)) when it dialed
// before its seed finished binding — the common case when a driver
// spawns hundreds of processes. Now it retries until -join-timeout.
// Returns ok=false with the exit code when the node must stop
// (retries exhausted, or a shutdown signal arrived mid-retry).
func (a *app) bootstrap(seedAddr string, budget time.Duration) (bool, int) {
	rng := rand.New(rand.NewSource(a.seed ^ 0x626f6f74)) // independent of protocol rng
	deadline := time.Now().Add(budget)
	delay := 250 * time.Millisecond
	const maxDelay = 4 * time.Second
	for attempt := 1; ; attempt++ {
		err := a.node.Bootstrap(seedAddr, 3*time.Second)
		if err == nil {
			return true, 0
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "bootstrap via %s failed after %d attempts: %v\n", seedAddr, attempt, err)
			a.writeStatus(true)
			a.node.Close()
			return false, 1
		}
		// Jitter in [delay/2, 3·delay/2): a cohort of joiners aimed at
		// the same seed spreads out instead of stampeding in lockstep.
		sleep := delay/2 + time.Duration(rng.Int63n(int64(delay)))
		if rem := time.Until(deadline); sleep > rem {
			sleep = rem
		}
		fmt.Printf("bootstrap attempt %d via %s failed (%v); retrying in %v\n", attempt, seedAddr, err, sleep.Round(time.Millisecond))
		if !a.sleep(sleep) {
			return false, a.shutdown()
		}
		if delay *= 2; delay > maxDelay {
			delay = maxDelay
		}
	}
}

// sleep waits d while servicing signals and status ticks; it returns
// false when a shutdown signal arrived.
func (a *app) sleep(d time.Duration) bool {
	deadline := time.After(d)
	for {
		select {
		case <-deadline:
			return true
		case <-a.statusTick:
			a.writeStatus(false)
		case s := <-a.sigs:
			if a.handleSig(s) {
				return false
			}
		}
	}
}

// collectHits prints query hits until the wait window closes; done
// reports that a shutdown signal ended the collection early.
func (a *app) collectHits(window time.Duration) (hits int, down bool) {
	deadline := time.After(window)
	for {
		select {
		case h := <-a.node.Hits():
			hits++
			fmt.Printf("  hit: object %#x held by %s\n", h.Object, h.Holder)
		case <-deadline:
			return hits, false
		case <-a.statusTick:
			a.writeStatus(false)
		case s := <-a.sigs:
			if a.handleSig(s) {
				return hits, true
			}
		}
	}
}

// serve keeps the node online for d, reporting status periodically and
// servicing signals and snapshot ticks.
func (a *app) serve(d time.Duration) {
	end := time.After(d)
	tick := time.NewTicker(5 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-end:
			fmt.Println("run period over, shutting down")
			return
		case <-tick.C:
			fmt.Printf("status: %d neighbors, %d queries processed\n",
				a.node.Degree(), a.node.QueriesForwarded())
		case <-a.statusTick:
			a.writeStatus(false)
		case h := <-a.node.Hits():
			fmt.Printf("  hit: object %#x held by %s\n", h.Object, h.Holder)
		case s := <-a.sigs:
			if a.handleSig(s) {
				return
			}
		}
	}
}

// parseID parses one object id, decimal or 0x-prefixed hex.
func parseID(s string) (uint64, error) {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}

// parseIDList parses the -store flag: a comma-separated id list with
// blank tokens ignored (so trailing commas are harmless).
func parseIDList(s string) ([]uint64, error) {
	var out []uint64
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		obj, err := parseID(tok)
		if err != nil {
			return nil, fmt.Errorf("object id %q: %v", tok, err)
		}
		out = append(out, obj)
	}
	return out, nil
}

// parseAddrList splits a comma-separated address list, dropping blank
// tokens.
func parseAddrList(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// resolveDeny merges the -deny flag with the current -deny-file
// contents (one address per line, blank lines and # comments
// ignored). A missing deny file is an empty list, not an error: the
// driver creates the file only when it first partitions the node.
func resolveDeny(flagList, file string) ([]string, error) {
	out := parseAddrList(flagList)
	if file == "" {
		return out, nil
	}
	data, err := os.ReadFile(file)
	if err != nil {
		if os.IsNotExist(err) {
			return out, nil
		}
		return nil, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, nil
}
