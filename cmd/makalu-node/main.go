// Command makalu-node runs one live Makalu peer: it listens on a TCP
// address, optionally joins an existing network through a seed peer,
// stores objects, and can issue flooding queries. Several instances
// on one machine (or many) form a real Makalu network.
//
// Usage:
//
//	# first node
//	makalu-node -listen 127.0.0.1:4001 -store 1001,1002
//	# join and query
//	makalu-node -listen 127.0.0.1:4002 -seed 127.0.0.1:4001 -query 1001 -ttl 5
//	# long-running member
//	makalu-node -listen 127.0.0.1:4003 -seed 127.0.0.1:4001 -run 60s
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"makalu/peer"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		seedAddr = flag.String("seed", "", "seed peer to bootstrap from")
		capacity = flag.Int("capacity", 10, "maximum neighbor count")
		store    = flag.String("store", "", "comma-separated object ids to host")
		query    = flag.String("query", "", "object id to search for (decimal or 0x hex)")
		ttl      = flag.Int("ttl", 5, "query TTL")
		wait     = flag.Duration("wait", 5*time.Second, "how long to await query hits")
		run      = flag.Duration("run", 0, "stay online this long after setup (0 = exit after query)")
		seed     = flag.Int64("rng-seed", time.Now().UnixNano(), "local randomness seed")
	)
	flag.Parse()

	node, err := peer.Start(*listen, peer.DefaultNodeConfig(*capacity, *seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer node.Close()
	fmt.Printf("node listening on %s (capacity %d)\n", node.Addr(), *capacity)

	for _, tok := range strings.Split(*store, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		obj, err := parseID(tok)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad object id %q: %v\n", tok, err)
			os.Exit(2)
		}
		node.AddObject(obj)
		fmt.Printf("hosting object %#x\n", obj)
	}

	if *seedAddr != "" {
		if err := node.Bootstrap(*seedAddr, 3*time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "bootstrap via %s failed: %v\n", *seedAddr, err)
			os.Exit(1)
		}
		fmt.Printf("joined network: %d neighbors %v\n", node.Degree(), node.Neighbors())
	}

	if *query != "" {
		obj, err := parseID(*query)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad query id %q: %v\n", *query, err)
			os.Exit(2)
		}
		id := node.Query(obj, *ttl)
		fmt.Printf("query %#x for object %#x (TTL %d)...\n", id, obj, *ttl)
		deadline := time.After(*wait)
		hits := 0
	collect:
		for {
			select {
			case h := <-node.Hits():
				hits++
				fmt.Printf("  hit: object %#x held by %s\n", h.Object, h.Holder)
			case <-deadline:
				break collect
			}
		}
		if hits == 0 {
			fmt.Println("no hits")
		}
	}

	if *run > 0 {
		fmt.Printf("staying online for %v...\n", *run)
		end := time.After(*run)
		tick := time.NewTicker(5 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-end:
				fmt.Println("shutting down")
				return
			case <-tick.C:
				fmt.Printf("status: %d neighbors, %d queries processed\n",
					node.Degree(), node.QueriesForwarded())
			case h := <-node.Hits():
				fmt.Printf("  hit: object %#x held by %s\n", h.Object, h.Holder)
			}
		}
	}
}

func parseID(s string) (uint64, error) {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}
