package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"makalu/internal/testnet"
)

func TestParseID(t *testing.T) {
	cases := []struct {
		in      string
		want    uint64
		wantErr bool
	}{
		{"0", 0, false},
		{"1001", 1001, false},
		{"18446744073709551615", ^uint64(0), false},
		{"0x0", 0, false},
		{"0x3e9", 1001, false},
		{"0X3E9", 1001, false},
		{"0xffffffffffffffff", ^uint64(0), false},
		{"", 0, true},
		{"0x", 0, true},
		{"banana", 0, true},
		{"-5", 0, true},
		{"0xg1", 0, true},
		{"18446744073709551616", 0, true}, // uint64 overflow
	}
	for _, c := range cases {
		got, err := parseID(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("parseID(%q): err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("parseID(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseIDList(t *testing.T) {
	cases := []struct {
		in      string
		want    []uint64
		wantErr bool
	}{
		{"", nil, false},
		{",,,", nil, false},
		{"1001", []uint64{1001}, false},
		{"1001,1002", []uint64{1001, 1002}, false},
		{" 1001 , 0x3ea ,", []uint64{1001, 1002}, false},
		{"1001,banana", nil, true},
		{"0x,1001", nil, true},
	}
	for _, c := range cases {
		got, err := parseIDList(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("parseIDList(%q): err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseIDList(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseIDList(%q)[%d] = %d, want %d", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestParseAddrList(t *testing.T) {
	got := parseAddrList(" 127.0.0.1:1 ,, 127.0.0.1:2, ")
	if len(got) != 2 || got[0] != "127.0.0.1:1" || got[1] != "127.0.0.1:2" {
		t.Fatalf("parseAddrList = %v", got)
	}
	if got := parseAddrList(""); got != nil {
		t.Fatalf("parseAddrList(\"\") = %v, want nil", got)
	}
}

func TestResolveDeny(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "deny.txt")

	// Missing file is an empty list, not an error: the testnet driver
	// creates deny files only when it first partitions a node.
	got, err := resolveDeny("127.0.0.1:9", path)
	if err != nil || len(got) != 1 || got[0] != "127.0.0.1:9" {
		t.Fatalf("resolveDeny with missing file = %v, %v", got, err)
	}

	content := "# comment\n127.0.0.1:10\n\n  127.0.0.1:11  \n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = resolveDeny("127.0.0.1:9", path)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"127.0.0.1:9", "127.0.0.1:10", "127.0.0.1:11"}
	if len(got) != len(want) {
		t.Fatalf("resolveDeny = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resolveDeny = %v, want %v", got, want)
		}
	}
}

// freePort reserves and releases an ephemeral port; the window between
// release and reuse is small enough for a test.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

// TestTwoProcessSocketSmoke is the satellite acceptance: two real
// makalu-node processes over real TCP — start, join, query, hit. It
// also exercises the two bugfixes end to end: the joiner launches
// BEFORE the seed exists (bootstrap must retry, not die), and the
// seed is shut down with SIGTERM (the handler must close cleanly and
// write its final -metrics-json snapshot).
func TestTwoProcessSocketSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	dir := t.TempDir()
	bin, err := testnet.BuildNodeBinary(dir)
	if err != nil {
		t.Fatal(err)
	}
	seedPort := freePort(t)
	seedAddr := fmt.Sprintf("127.0.0.1:%d", seedPort)
	seedStatus := filepath.Join(dir, "seed.json")

	// The joiner starts first: its bootstrap target does not exist yet,
	// so the first attempts MUST fail and be retried.
	joiner := exec.Command(bin,
		"-listen", "127.0.0.1:0",
		"-seed", seedAddr,
		"-rng-seed", "42",
		"-query", "1001", "-ttl", "4", "-wait", "4s",
		"-join-timeout", "30s",
	)
	var joinerOut strings.Builder
	joiner.Stdout = &joinerOut
	joiner.Stderr = &joinerOut
	if err := joiner.Start(); err != nil {
		t.Fatal(err)
	}
	defer joiner.Process.Kill()

	time.Sleep(1 * time.Second) // let the joiner fail at least once

	seed := exec.Command(bin,
		"-listen", seedAddr,
		"-store", "1001",
		"-rng-seed", "43",
		"-run", "60s",
		"-metrics-json", seedStatus,
		"-metrics-interval", "250ms",
	)
	var seedOut strings.Builder
	seed.Stdout = &seedOut
	seed.Stderr = &seedOut
	if err := seed.Start(); err != nil {
		t.Fatal(err)
	}
	defer seed.Process.Kill()

	joinDone := make(chan error, 1)
	go func() { joinDone <- joiner.Wait() }()
	select {
	case err := <-joinDone:
		if err != nil {
			t.Fatalf("joiner exited %v:\n%s", err, joinerOut.String())
		}
	case <-time.After(45 * time.Second):
		t.Fatalf("joiner did not finish; output so far:\n%s", joinerOut.String())
	}
	out := joinerOut.String()
	if !strings.Contains(out, "hit: object 0x3e9") {
		t.Fatalf("joiner got no hit for object 1001:\n%s", out)
	}
	if !strings.Contains(out, "retrying in") {
		t.Fatalf("joiner never exercised the bootstrap retry path:\n%s", out)
	}
	if !strings.Contains(out, "rng seed 42") {
		t.Fatalf("joiner did not log its effective rng seed:\n%s", out)
	}

	// SIGTERM the seed: the signal handler must close gracefully (exit
	// code 0) and leave a final status snapshot on disk.
	if err := seed.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	seedDone := make(chan error, 1)
	go func() { seedDone <- seed.Wait() }()
	select {
	case err := <-seedDone:
		if err != nil {
			t.Fatalf("seed exited %v after SIGTERM:\n%s", err, seedOut.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("seed ignored SIGTERM:\n%s", seedOut.String())
	}
	st, err := testnet.ReadNodeStatus(seedStatus)
	if err != nil {
		t.Fatalf("seed final status: %v\n%s", err, seedOut.String())
	}
	if !st.Final {
		t.Fatalf("seed status not marked final: %+v", st)
	}
	if st.Addr != seedAddr {
		t.Fatalf("seed status addr = %q, want %q", st.Addr, seedAddr)
	}
	if st.Seed != 43 {
		t.Fatalf("seed status seed = %d, want 43", st.Seed)
	}
	if st.Metrics.Counters["peer.joins"] == 0 {
		t.Fatalf("seed metrics recorded no joins: %+v", st.Metrics.Counters)
	}
}
