package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"makalu"
	"makalu/internal/obs"
	"makalu/internal/serve"
)

// serveFlags is the query-serving service mode: instead of joining a
// live peer network, the process builds a simulated overlay in memory
// and serves flood/walk/abf lookups over HTTP and/or the raw TCP line
// protocol, with the popularity-aware result cache in front of the
// search kernels. This is the daemon the load generator
// (cmd/makalu-loadgen) and the CI serve smoke drive.
type serveFlags struct {
	httpAddr    string
	tcpAddr     string
	nodes       int
	objects     int
	replication float64
	joinWave    int
	shards      int
	window      int
	queueDepth  int
	cache       int
	abf         bool
	rate        float64
	burst       float64
	debug       bool
}

func registerServeFlags(sf *serveFlags) {
	flag.StringVar(&sf.httpAddr, "serve-http", "", "serve HTTP lookups on this address (service mode)")
	flag.StringVar(&sf.tcpAddr, "serve-tcp", "", "serve raw line-protocol lookups on this address (service mode)")
	flag.IntVar(&sf.nodes, "serve-nodes", 50000, "service mode: overlay size to build")
	flag.IntVar(&sf.objects, "serve-objects", 10000, "service mode: distinct objects to place")
	flag.Float64Var(&sf.replication, "serve-replication", 0.01, "service mode: replica fraction per object")
	flag.IntVar(&sf.joinWave, "serve-join-wave", 4096, "service mode: batched join wave size (<=1 = sequential build)")
	flag.IntVar(&sf.shards, "serve-shards", 0, "service mode: worker/cache shards (0 = GOMAXPROCS)")
	flag.IntVar(&sf.window, "serve-window", 0, "service mode: micro-batch admission window (0 = default)")
	flag.IntVar(&sf.queueDepth, "serve-queue", 0, "service mode: per-shard queue depth (0 = default)")
	flag.IntVar(&sf.cache, "serve-cache", 4096, "service mode: result cache capacity (0 = cache off)")
	flag.BoolVar(&sf.abf, "serve-abf", false, "service mode: build the attenuated-Bloom identifier index (mech=abf)")
	flag.Float64Var(&sf.rate, "serve-rate", 0, "service mode: per-client tokens/second (0 = unlimited)")
	flag.Float64Var(&sf.burst, "serve-burst", 0, "service mode: per-client burst (0 = 2x rate)")
	flag.BoolVar(&sf.debug, "serve-debug", false, "service mode: expose /debug/metrics and /debug/pprof over HTTP")
}

func (sf *serveFlags) active() bool { return sf.httpAddr != "" || sf.tcpAddr != "" }

// serveMain builds the overlay + content + engine and serves until
// SIGINT/SIGTERM. It is the whole lifecycle of service mode.
func serveMain(sf *serveFlags, seed int64) int {
	reg := obs.NewRegistry()
	t0 := time.Now()
	fmt.Printf("building %d-node overlay (join wave %d, seed %d)...\n", sf.nodes, sf.joinWave, seed)
	ov, err := makalu.New(makalu.Config{Nodes: sf.nodes, Seed: seed, JoinWave: sf.joinWave})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	content, err := ov.PlaceContent(sf.objects, sf.replication)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var ix *makalu.IdentifierIndex
	if sf.abf {
		if ix, err = ov.BuildIdentifierIndex(content); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	eng, err := ov.ServeEngine(content, ix, serve.Config{
		Shards:        sf.shards,
		Window:        sf.window,
		QueueDepth:    sf.queueDepth,
		CacheCapacity: sf.cache,
		Metrics:       reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer eng.Close()
	fmt.Printf("overlay ready in %v: %d nodes, %d objects, cache %d, %d shards\n",
		time.Since(t0).Round(time.Millisecond), ov.Nodes(), sf.objects, sf.cache, eng.Shards())

	burst := sf.burst
	if burst == 0 {
		burst = 2 * sf.rate
	}
	lim := serve.NewLimiter(sf.rate, burst) // nil (off) when rate is 0

	var httpSrv *http.Server
	if sf.httpAddr != "" {
		httpSrv = serve.NewHTTPServer(sf.httpAddr, serve.NewHTTPHandler(serve.HTTPConfig{
			Engine: eng, Limiter: lim, Metrics: reg, Debug: sf.debug,
		}))
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "http: %v\n", err)
			}
		}()
		fmt.Printf("serving HTTP lookups on %s\n", sf.httpAddr)
	}
	var tcpSrv *serve.TCPServer
	if sf.tcpAddr != "" {
		tcpSrv, err = serve.NewTCPServer(sf.tcpAddr, eng, lim)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("serving TCP lookups on %s\n", tcpSrv.Addr())
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	s := <-sigs
	fmt.Printf("received %v, shutting down\n", s)
	if httpSrv != nil {
		httpSrv.Close()
	}
	if tcpSrv != nil {
		tcpSrv.Close()
	}
	return 0
}

// warnSingleCPUConfig flags the footgun of running a sub-second
// management loop on GOMAXPROCS=1: the protocol timer competes with
// every connection goroutine for the only P, so pings and query
// forwards stall behind management work and the node looks flaky for
// reasons that have nothing to do with the overlay.
func warnSingleCPUConfig(manage time.Duration) {
	if runtime.GOMAXPROCS(0) == 1 && manage < time.Second {
		fmt.Fprintf(os.Stderr,
			"warning: GOMAXPROCS=1 with -manage-interval %v; sub-second management on a single CPU "+
				"starves connection handling — raise -manage-interval to >=1s or set GOMAXPROCS>1\n",
			manage)
	}
}
