package main

import (
	"fmt"
	"math/rand"
	"time"

	"makalu/internal/obs"
	"makalu/internal/sim"
	"makalu/peer"
	"makalu/peer/faultnet"
)

// runLiveChurn drives a live in-process TCP network — not the
// simulator — through a scripted failure scenario under the faultnet
// injector: converge, hard-kill 30% of the nodes (no Bye, no FIN) and
// black-hole 10% of the surviving links, then watch the survivors'
// liveness machinery evict the dead and re-knit the overlay. It emits
// the same snapshot timeline as `makalu-sim -churn`, so live and
// simulated fault-tolerance curves are directly comparable.
func runLiveChurn(nodes int, seed int64, reg *obs.Registry, trace *obs.EventLog) error {
	if nodes < 10 {
		nodes = 10
	}
	const interval = 250 * time.Millisecond
	fn := faultnet.New(faultnet.Config{Seed: seed})
	cfg := peer.Config{
		Capacity:        4,
		ManageInterval:  interval,
		Seed:            seed,
		DialTimeout:     500 * time.Millisecond,
		PingTimeout:     interval,
		SuspectMisses:   1,
		EvictMisses:     2,
		IdleTimeout:     8 * interval,
		DialBackoffBase: interval,
		DialMaxFails:    4,
		Metrics:         reg,
		Trace:           trace,
	}
	c, err := peer.StartCluster(nodes, cfg, func(int) peer.Transport { return fn.Endpoint() })
	if err != nil {
		return err
	}
	defer c.CloseAll()

	// Let the management loops grow the bootstrap chain to capacity.
	convergeBy := time.Now().Add(30 * time.Second)
	for {
		s := c.Snapshot()
		if s.GiantFraction == 1.0 && s.MeanDegree >= 2.5 {
			break
		}
		if time.Now().After(convergeBy) {
			return fmt.Errorf("live overlay never converged: %+v", s)
		}
		time.Sleep(50 * time.Millisecond)
	}
	c.PlaceObjects(1)
	rng := rand.New(rand.NewSource(seed + 11))

	fmt.Printf("live churn: %d nodes, manage interval %v, kill 30%% + black-hole 10%% of links at t=1s\n",
		nodes, interval)
	fmt.Printf("%8s %8s %12s %8s %10s %10s\n", "time", "live", "components", "giant", "meandeg", "search")
	snapshot := func() sim.Snapshot {
		cs := c.Snapshot()
		cs.SearchSuccess = c.ProbeQueries(10, 6, time.Second, rng)
		fmt.Printf("%8.1f %8d %12d %7.1f%% %10.2f %10s\n",
			cs.Time, cs.Live, cs.Components, 100*cs.GiantFraction, cs.MeanDegree, sim.FmtPercent(cs.SearchSuccess))
		// Re-expressed as the simulator's snapshot type: one timeline
		// format for both worlds.
		return sim.Snapshot{
			Time: cs.Time, Live: cs.Live, Components: cs.Components,
			GiantFraction: cs.GiantFraction, MeanDegree: cs.MeanDegree,
			SearchSuccess: cs.SearchSuccess, MeanRating: sim.SentinelOff,
		}
	}

	var timeline []sim.Snapshot
	for i := 0; i < 4; i++ {
		timeline = append(timeline, snapshot())
		time.Sleep(interval)
	}

	// The failure event: every third node crashes silently (isolated
	// first so not even a FIN escapes), then a tenth of the surviving
	// links go black.
	var killed []int
	for i := 0; i < nodes && len(killed) < (nodes*3+9)/10; i += 3 {
		killed = append(killed, i)
	}
	for _, i := range killed {
		fn.Isolate(c.Node(i).Addr())
	}
	for _, i := range killed {
		c.Kill(i)
	}
	links := c.LiveLinks()
	nCut := (len(links) + 9) / 10
	for _, lk := range links[:nCut] {
		fn.CutLink(c.Node(lk[0]).Addr(), c.Node(lk[1]).Addr())
	}
	fmt.Printf("  [killed %d nodes, cut %d links]\n", len(killed), nCut)

	for i := 0; i < 10; i++ {
		time.Sleep(interval)
		timeline = append(timeline, snapshot())
	}

	sum := sim.SummarizeTimeline(timeline)
	fmt.Printf("summary: giant min %.1f%% mean %.1f%%, search mean %s over %d snapshots\n",
		100*sum.MinGiant, 100*sum.MeanGiant, sim.FmtPercent(sum.MeanSearchSuccess), sum.Samples)
	dropped, duplicated, delayed := fn.Stats()
	fmt.Printf("faultnet: %d frames dropped, %d duplicated, %d delayed\n", dropped, duplicated, delayed)
	return nil
}
