package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"makalu/internal/experiments"
	"makalu/internal/obs"
)

// runStream executes the chunked-streaming sweep (-exp stream), prints
// the table, optionally writes the JSON record (-stream-json — the
// BENCH_stream.json artifact) and optionally gates the fresh numbers
// against a committed baseline (-stream-baseline).
func runStream(n int, seed int64, transfers int, reg *obs.Registry, jsonPath, baselinePath string) error {
	opt := experiments.DefaultStreamOptions(n, seed)
	if transfers > 0 {
		opt.Transfers = transfers
	}
	opt.Obs = reg
	start := time.Now()
	res, err := experiments.RunStream(opt)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	fmt.Printf("[stream completed in %v]\n", time.Since(start).Round(time.Millisecond))
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("[stream report written to %s]\n", jsonPath)
	}
	if baselinePath != "" {
		if err := checkStreamBaseline(res, baselinePath); err != nil {
			return err
		}
		fmt.Printf("[stream baseline %s satisfied]\n", baselinePath)
	}
	return nil
}

// checkStreamBaseline gates a fresh stream sweep against the committed
// BENCH_stream.json. The sweep is deterministic for a fixed seed, so on
// unchanged code fresh == baseline exactly; the tolerances only give
// intentional scheduler changes room to move the numbers without a
// baseline refresh for every touch:
//
//   - each baseline row must still exist,
//   - completion may not drop more than 10 points (churn makes some
//     failures legitimate; a slide below that is a recovery regression),
//   - mean goodput may not fall below half the baseline,
//   - mean stall rate may not grow by more than 0.15,
//   - the churn row must still prove the acceptance property: at least
//     one in-flight transfer lost an active source to the kill wave,
//     re-requests happened, and transfers still completed.
func checkStreamBaseline(fresh *experiments.StreamResult, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("stream-baseline: %w", err)
	}
	var base experiments.StreamResult
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("stream-baseline %s: %w", path, err)
	}
	rows := make(map[string]experiments.StreamRow, len(fresh.Rows))
	for _, r := range fresh.Rows {
		rows[r.Label] = r
	}
	for _, b := range base.Rows {
		f, ok := rows[b.Label]
		if !ok {
			return fmt.Errorf("stream-baseline: scenario %q missing from fresh run", b.Label)
		}
		if f.CompletedFraction < b.CompletedFraction-0.10 {
			return fmt.Errorf("stream-baseline %s: completed fraction %.3f fell below baseline %.3f - 0.10",
				b.Label, f.CompletedFraction, b.CompletedFraction)
		}
		if b.GoodputMean > 0 && f.GoodputMean < 0.5*b.GoodputMean {
			return fmt.Errorf("stream-baseline %s: mean goodput %.1f B/ms fell below half of baseline %.1f",
				b.Label, f.GoodputMean, b.GoodputMean)
		}
		if f.StallRateMean > b.StallRateMean+0.15 {
			return fmt.Errorf("stream-baseline %s: mean stall rate %.4f exceeds baseline %.4f + 0.15",
				b.Label, f.StallRateMean, b.StallRateMean)
		}
		if b.Label != "churn" {
			continue
		}
		// Structural acceptance floor, independent of the numbers.
		switch {
		case f.KilledMidTransfer < 1:
			return fmt.Errorf("stream-baseline churn: kill wave removed no active source mid-transfer")
		case f.ReRequests < 1:
			return fmt.Errorf("stream-baseline churn: no chunk was ever re-requested — source death never exercised recovery")
		case f.Completed < 1:
			return fmt.Errorf("stream-baseline churn: no transfer completed under churn")
		}
	}
	return nil
}
