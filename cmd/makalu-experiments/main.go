// Command makalu-experiments regenerates the paper's tables and
// figures (DESIGN.md experiments E1–E11). Each experiment prints a
// paper-style text table; figures print their data series.
//
// Usage:
//
//	makalu-experiments -exp table1 -n 100000 -queries 1000
//	makalu-experiments -exp all                 # scaled-down defaults
//
// Experiments: paths (E1), spectrum (E2), fig1 (E3), table1 (E4),
// duplicates (E5), fig2 (E6), fig3 (E7), fig4 (E8), abf-vs-dht (E9),
// table2 (E10), resilience (E11), expansion (E12), low-replication
// (E13), strategies (E14), convergence (E15), ratings (E16), all.
//
// -bench-json <path> skips the experiments and instead reruns a
// micro-benchmark suite through the public API, writing a
// machine-readable report; -bench-suite selects the rating-engine
// scenarios (core → the committed BENCH_core.json) or the parallel
// query-batch engine (search → the committed BENCH_search.json).
//
// -workers bounds the goroutines used for query batches and the
// experiment-cell scheduler (0 = GOMAXPROCS, 1 = sequential); results
// are identical at any setting. -cpuprofile/-memprofile write pprof
// profiles of the run (see DESIGN.md's profiling note).
//
// -live-churn skips the experiments and runs the live TCP
// fault-injection scenario: a real in-process network under the
// faultnet injector is hard-killed and partitioned, and the recovery
// is reported as the same snapshot timeline `makalu-sim -churn` emits.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"makalu/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (paths, spectrum, fig1, table1, duplicates, fig2, fig3, fig4, abf-vs-dht, table2, resilience, expansion, low-replication, strategies, convergence, ratings, all)")
		n       = flag.Int("n", 2000, "network size (paper scale: 100000)")
		queries = flag.Int("queries", 300, "queries per measurement point")
		seed    = flag.Int64("seed", 1, "master random seed")
		sources = flag.Int("sources", 500, "BFS/Dijkstra sources for path analysis (0 = exact)")
		workers   = flag.Int("workers", 0, "goroutines for query batches and experiment cells (0 = GOMAXPROCS, 1 = sequential; results identical at any setting)")
		plotDir   = flag.String("plot", "", "write gnuplot .dat/.gp files for figures to this directory")
		benchTo   = flag.String("bench-json", "", "run a micro-benchmark suite and write a JSON report to this path instead of experiments")
		benchKind = flag.String("bench-suite", "core", "benchmark suite for -bench-json: core (rating engine) or search (query-batch engine)")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile at exit to this path")
		liveChurn = flag.Bool("live-churn", false, "run the live TCP fault-injection scenario instead of experiments (uses -seed; scale with -live-nodes)")
		liveNodes = flag.Int("live-nodes", 24, "node count for -live-churn")
	)
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}
	if *benchTo != "" {
		if err := runBenchJSON(*benchTo, *benchKind); err != nil {
			fmt.Fprintf(os.Stderr, "benchmark run failed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *liveChurn {
		if err := runLiveChurn(*liveNodes, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "live churn failed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	opt := experiments.Options{N: *n, Queries: *queries, Seed: *seed, Workers: *workers}

	type runner struct {
		id  string
		run func() (interface{ Render() string }, error)
	}
	runners := []runner{
		{"paths", func() (interface{ Render() string }, error) { return experiments.RunPaths(opt, *sources) }},
		{"spectrum", func() (interface{ Render() string }, error) { return experiments.RunConnectivity(opt) }},
		{"fig1", func() (interface{ Render() string }, error) { return experiments.RunFigure1(opt) }},
		{"table1", func() (interface{ Render() string }, error) { return experiments.RunTable1(opt) }},
		{"duplicates", func() (interface{ Render() string }, error) { return experiments.RunDuplicates(opt, 4, 0.01) }},
		{"fig2", func() (interface{ Render() string }, error) { return experiments.RunFigure2(opt) }},
		{"fig3", func() (interface{ Render() string }, error) { return experiments.RunFigure3(opt) }},
		{"fig4", func() (interface{ Render() string }, error) { return experiments.RunFigure4(opt) }},
		{"abf-vs-dht", func() (interface{ Render() string }, error) { return experiments.RunABFvsDHT(opt, 0.01) }},
		{"table2", func() (interface{ Render() string }, error) { return experiments.RunTable2(opt) }},
		{"resilience", func() (interface{ Render() string }, error) { return experiments.RunResilience(opt) }},
		{"expansion", func() (interface{ Render() string }, error) { return experiments.RunExpansion(opt) }},
		{"low-replication", func() (interface{ Render() string }, error) { return experiments.RunLowReplication(opt) }},
		{"strategies", func() (interface{ Render() string }, error) { return experiments.RunStrategies(opt) }},
		{"convergence", func() (interface{ Render() string }, error) { return experiments.RunConvergence(opt, 10) }},
		{"ratings", func() (interface{ Render() string }, error) { return experiments.RunRatings(opt) }},
	}

	matched := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.id {
			continue
		}
		matched = true
		start := time.Now()
		res, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", r.id, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		if *plotDir != "" {
			if pw, ok := res.(experiments.PlotWriter); ok {
				if err := os.MkdirAll(*plotDir, 0o755); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				if err := pw.WritePlotData(*plotDir); err != nil {
					fmt.Fprintf(os.Stderr, "plot export for %s failed: %v\n", r.id, err)
					os.Exit(1)
				}
				fmt.Printf("[%s plot data written to %s]\n", r.id, *plotDir)
			}
		}
		fmt.Printf("[%s completed in %v]\n\n", r.id, time.Since(start).Round(time.Millisecond))
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
