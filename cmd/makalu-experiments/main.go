// Command makalu-experiments regenerates the paper's tables and
// figures (DESIGN.md experiments E1–E11). Each experiment prints a
// paper-style text table; figures print their data series.
//
// Usage:
//
//	makalu-experiments -exp table1 -n 100000 -queries 1000
//	makalu-experiments -exp all                 # scaled-down defaults
//
// Experiments: paths (E1), spectrum (E2), fig1 (E3), table1 (E4),
// duplicates (E5), fig2 (E6), fig3 (E7), fig4 (E8), abf-vs-dht (E9),
// table2 (E10), resilience (E11), expansion (E12), low-replication
// (E13), strategies (E14), convergence (E15), ratings (E16), all.
//
// -bench-json <path> skips the experiments and instead reruns a
// micro-benchmark suite through the public API, writing a
// machine-readable report; -bench-suite selects the rating-engine
// scenarios (core → the committed BENCH_core.json) or the parallel
// query-batch engine (search → the committed BENCH_search.json).
//
// -workers bounds the goroutines used for query batches and the
// experiment-cell scheduler (0 = GOMAXPROCS, 1 = sequential); results
// are identical at any setting. -cpuprofile/-memprofile write pprof
// profiles of the run (see DESIGN.md's profiling note).
//
// -live-churn skips the experiments and runs the live TCP
// fault-injection scenario: a real in-process network under the
// faultnet injector is hard-killed and partitioned, and the recovery
// is reported as the same snapshot timeline `makalu-sim -churn` emits.
//
// -metrics-json <path> writes the obs registry (counters, gauges,
// per-query and wire histograms) as JSON at exit; -trace <path> writes
// the overlay event log (join/prune/suspect/evict/dial-backoff/query
// events) as JSON lines; -metrics-dump prints an expvar-style text
// dump to stderr at exit. All three work for experiments and for
// -live-churn.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"makalu/internal/experiments"
	"makalu/internal/obs"
	"makalu/internal/search"
)

// Metric names for the per-query batch histograms the experiments
// accumulate when observability is on.
const (
	mQueryLatency = "search.query_latency_ns"
	mQueryHops    = "search.query_hops"
	mQueryMsgs    = "search.query_messages"
)

// writeObs flushes the observability outputs selected on the command
// line. Failures are reported but never change the exit status: the
// measurements already printed are the run's product, the dumps are a
// side channel.
func writeObs(reg *obs.Registry, trace *obs.EventLog, metricsPath, tracePath string, dump bool) {
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err == nil {
			err = reg.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics-json: %v\n", err)
		} else {
			fmt.Printf("[metrics written to %s]\n", metricsPath)
		}
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err == nil {
			err = trace.WriteJSONL(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		} else {
			fmt.Printf("[%d trace events written to %s (%d overwritten)]\n", trace.Len(), tracePath, trace.Overwritten())
		}
	}
	if dump {
		if err := reg.WriteText(os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "metrics-dump: %v\n", err)
		}
	}
}

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment id (paths, spectrum, fig1, table1, duplicates, fig2, fig3, fig4, abf-vs-dht, table2, resilience, expansion, low-replication, strategies, convergence, ratings, all)")
		n           = flag.Int("n", 2000, "network size (paper scale: 100000)")
		queries     = flag.Int("queries", 300, "queries per measurement point")
		seed        = flag.Int64("seed", 1, "master random seed")
		sources     = flag.Int("sources", 500, "BFS/Dijkstra sources for path analysis (0 = exact)")
		workers     = flag.Int("workers", 0, "goroutines for query batches and experiment cells (0 = GOMAXPROCS, 1 = sequential; results identical at any setting)")
		plotDir     = flag.String("plot", "", "write gnuplot .dat/.gp files for figures to this directory")
		benchTo     = flag.String("bench-json", "", "run a micro-benchmark suite and write a JSON report to this path instead of experiments")
		benchKind   = flag.String("bench-suite", "core", "benchmark suite for -bench-json: core (rating engine) or search (query-batch engine)")
		benchBase   = flag.String("bench-baseline", "", "committed BENCH_*.json to compare the fresh -bench-json report against; exit non-zero on regression")
		benchMaxX   = flag.Float64("bench-max-regression", 2.0, "maximum allowed ns/op ratio vs -bench-baseline before failing")
		cpuProf     = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
		memProf     = flag.String("memprofile", "", "write a pprof heap profile at exit to this path")
		liveChurn   = flag.Bool("live-churn", false, "run the live TCP fault-injection scenario instead of experiments (uses -seed; scale with -live-nodes)")
		liveNodes   = flag.Int("live-nodes", 24, "node count for -live-churn")
		metricsJSON = flag.String("metrics-json", "", "write the metrics registry (counters, gauges, histograms) as JSON to this path at exit")
		tracePath   = flag.String("trace", "", "write the overlay event trace as JSON lines to this path at exit")
		metricsDump = flag.Bool("metrics-dump", false, "print an expvar-style metrics dump to stderr at exit")
		scaleSizes  = flag.String("scale-sizes", "10000,50000,200000,1000000,10000000", "comma-separated network sizes for -exp scale")
		scaleJSON   = flag.String("scale-json", "", "write the -exp scale sweep as JSON to this path (the BENCH_scale.json record)")
		scaleLand   = flag.Int("scale-landmarks", 64, "landmark BFS sources for the sampled path length in -exp scale")
		streamJSON  = flag.String("stream-json", "", "write the -exp stream sweep as JSON to this path (the BENCH_stream.json record)")
		streamBase  = flag.String("stream-baseline", "", "committed BENCH_stream.json to gate the fresh -exp stream run against; exit non-zero on regression")
		streamXfers = flag.Int("stream-transfers", 0, "downloads per -exp stream scenario (0 = default 24)")
	)
	flag.Parse()
	// One registry and one event log for the whole run, whichever mode
	// executes; nil-safe handles make this free when no flag asks for
	// observability.
	var reg *obs.Registry
	var trace *obs.EventLog
	obsOn := *metricsJSON != "" || *tracePath != "" || *metricsDump
	if obsOn {
		reg = obs.NewRegistry()
		trace = obs.NewEventLog(0)
		defer writeObs(reg, trace, *metricsJSON, *tracePath, *metricsDump)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}
	if *benchTo != "" {
		if err := runBenchJSON(*benchTo, *benchKind); err != nil {
			fmt.Fprintf(os.Stderr, "benchmark run failed: %v\n", err)
			os.Exit(1)
		}
		if *benchBase != "" {
			rep, err := os.ReadFile(*benchTo)
			var fresh benchReport
			if err == nil {
				err = json.Unmarshal(rep, &fresh)
			}
			if err == nil {
				err = compareBaseline(&fresh, *benchBase, *benchMaxX)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench-baseline: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}
	if *liveChurn {
		if err := runLiveChurn(*liveNodes, *seed, reg, trace); err != nil {
			fmt.Fprintf(os.Stderr, "live churn failed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "scale" {
		// The scale sweep is size-parameterized (-scale-sizes), runs up
		// to 10⁶ nodes and is deliberately excluded from -exp all.
		if err := runScale(*scaleSizes, *scaleLand, *seed, *scaleJSON); err != nil {
			fmt.Fprintf(os.Stderr, "experiment scale failed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "stream" {
		// The streaming sweep drives the chunked-transfer scheduler
		// under churn plus a kill wave; like scale it has its own knobs
		// and JSON record, so it is excluded from -exp all.
		if err := runStream(*n, *seed, *streamXfers, reg, *streamJSON, *streamBase); err != nil {
			fmt.Fprintf(os.Stderr, "experiment stream failed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	opt := experiments.Options{N: *n, Queries: *queries, Seed: *seed, Workers: *workers}
	if obsOn {
		opt.Obs = &search.BatchObs{
			Latency:  reg.Histogram(mQueryLatency),
			Hops:     reg.Histogram(mQueryHops),
			Messages: reg.Histogram(mQueryMsgs),
		}
	}

	type runner struct {
		id  string
		run func() (interface{ Render() string }, error)
	}
	runners := []runner{
		{"paths", func() (interface{ Render() string }, error) { return experiments.RunPaths(opt, *sources) }},
		{"spectrum", func() (interface{ Render() string }, error) { return experiments.RunConnectivity(opt) }},
		{"fig1", func() (interface{ Render() string }, error) { return experiments.RunFigure1(opt) }},
		{"table1", func() (interface{ Render() string }, error) { return experiments.RunTable1(opt) }},
		{"duplicates", func() (interface{ Render() string }, error) { return experiments.RunDuplicates(opt, 4, 0.01) }},
		{"fig2", func() (interface{ Render() string }, error) { return experiments.RunFigure2(opt) }},
		{"fig3", func() (interface{ Render() string }, error) { return experiments.RunFigure3(opt) }},
		{"fig4", func() (interface{ Render() string }, error) { return experiments.RunFigure4(opt) }},
		{"abf-vs-dht", func() (interface{ Render() string }, error) { return experiments.RunABFvsDHT(opt, 0.01) }},
		{"table2", func() (interface{ Render() string }, error) { return experiments.RunTable2(opt) }},
		{"resilience", func() (interface{ Render() string }, error) { return experiments.RunResilience(opt) }},
		{"expansion", func() (interface{ Render() string }, error) { return experiments.RunExpansion(opt) }},
		{"low-replication", func() (interface{ Render() string }, error) { return experiments.RunLowReplication(opt) }},
		{"strategies", func() (interface{ Render() string }, error) { return experiments.RunStrategies(opt) }},
		{"convergence", func() (interface{ Render() string }, error) { return experiments.RunConvergence(opt, 10) }},
		{"ratings", func() (interface{ Render() string }, error) { return experiments.RunRatings(opt) }},
	}

	matched := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.id {
			continue
		}
		matched = true
		start := time.Now()
		res, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", r.id, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		if *plotDir != "" {
			if pw, ok := res.(experiments.PlotWriter); ok {
				if err := os.MkdirAll(*plotDir, 0o755); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				if err := pw.WritePlotData(*plotDir); err != nil {
					fmt.Fprintf(os.Stderr, "plot export for %s failed: %v\n", r.id, err)
					os.Exit(1)
				}
				fmt.Printf("[%s plot data written to %s]\n", r.id, *plotDir)
			}
		}
		fmt.Printf("[%s completed in %v]\n\n", r.id, time.Since(start).Round(time.Millisecond))
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
