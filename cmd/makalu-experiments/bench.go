package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"makalu/internal/core"
	"makalu/internal/experiments"
	"makalu/internal/netmodel"
	"makalu/internal/search"
	"makalu/internal/topology"
)

// The -bench-json mode reruns the performance-critical kernels through
// the public API and writes a machine-readable report, so
// BENCH_core.json / BENCH_search.json can be committed next to the
// code as the performance trajectory record. -bench-suite picks the
// core (rating/prune/build) or search (query-batch engine) scenarios.

// benchResult is one benchmark line of the report. GOMAXPROCS and
// Workers are recorded per entry so serial and parallel figures in the
// same file are self-describing: a workers=8 entry measured under
// GOMAXPROCS=1 documents that no wall-clock speedup was physically
// available when it was recorded.
type benchResult struct {
	Name       string             `json:"name"`
	Iterations int                `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Workers    int                `json:"workers,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// benchReport is the BENCH_*.json document.
type benchReport struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	NumCPU      int           `json:"num_cpu"`
	Suite       string        `json:"suite"`
	Benchmarks  []benchResult `json:"benchmarks"`
}

func (rep *benchReport) add(name string, workers int, metrics map[string]float64, r testing.BenchmarkResult) {
	nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
	rep.Benchmarks = append(rep.Benchmarks, benchResult{
		Name:       name,
		Iterations: r.N,
		NsPerOp:    nsPerOp,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Metrics:    metrics,
	})
	fmt.Printf("%-44s %14.0f ns/op  (%d iterations)\n", name, nsPerOp, r.N)
}

func buildBenchOverlay(n, deg, workers int, full bool) (*core.Overlay, error) {
	net := netmodel.NewEuclidean(n, 1000, 1)
	cfg := core.DefaultConfig(net, 1)
	if deg > 0 {
		caps := make([]int, n)
		for i := range caps {
			caps[i] = deg
		}
		cfg.Capacities = caps
	}
	cfg.FullRecomputePrune = full
	cfg.Workers = workers
	return core.Build(n, cfg)
}

// compareBaseline checks the fresh report against a committed
// BENCH_*.json and returns an error when any same-named benchmark
// regressed by more than maxRatio in ns/op. Entries present on only
// one side are ignored (suites grow over time); a >2× threshold rides
// out scheduler noise on shared CI runners while still catching real
// complexity regressions.
func compareBaseline(rep *benchReport, baselinePath string, maxRatio float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	baseline := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b.NsPerOp
	}
	var regressions []string
	compared := 0
	for _, b := range rep.Benchmarks {
		want, ok := baseline[b.Name]
		if !ok || want <= 0 {
			continue
		}
		compared++
		ratio := b.NsPerOp / want
		status := "ok"
		if ratio > maxRatio {
			status = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%.2fx)", b.Name, b.NsPerOp, want, ratio))
		}
		fmt.Printf("baseline %-44s %6.2fx  %s\n", b.Name, ratio, status)
	}
	if compared == 0 {
		return fmt.Errorf("no benchmarks in common with baseline %s", baselinePath)
	}
	if len(regressions) > 0 {
		msg := "performance regressions vs " + baselinePath + ":"
		for _, r := range regressions {
			msg += "\n  " + r
		}
		return fmt.Errorf("%s", msg)
	}
	fmt.Printf("[%d benchmarks within %.1fx of %s]\n", compared, maxRatio, baselinePath)
	return nil
}

// runBenchJSON executes the selected benchmark suite and writes the
// report to path.
func runBenchJSON(path, suite string) error {
	// Fail on an unwritable path now, not after minutes of benchmarking.
	probe, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	probe.Close()
	rep := &benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Suite:       suite,
	}
	switch suite {
	case "core":
		err = benchCore(rep)
	case "search":
		err = benchSearch(rep)
	default:
		return fmt.Errorf("unknown bench suite %q (core, search)", suite)
	}
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("[benchmark report written to %s]\n", path)
	return nil
}

// benchCore mirrors internal/core/bench_test.go: rating a node, the
// batched RateAll pass serial and parallel, draining 10 excess links
// at mean degree ≈ 30 on both prune engines, and full 2000-node
// construction on both.
func benchCore(rep *benchReport) error {
	o, err := buildBenchOverlay(2000, 0, 0, false)
	if err != nil {
		return err
	}
	var buf []core.RatingInfo
	rep.add("RateNeighbors/n=2000", 0, nil, testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf = o.RateNeighbors(i%2000, buf[:0])
		}
	}))

	oSerial, err := buildBenchOverlay(2000, 0, 1, false)
	if err != nil {
		return err
	}
	var allBuf [][]core.RatingInfo
	var rateAllNs [2]float64
	for i, ov := range []*core.Overlay{oSerial, o} {
		workers := 1
		name := "RateAll/serial/n=2000"
		if i == 1 {
			workers = runtime.GOMAXPROCS(0)
			name = "RateAll/parallel/n=2000"
		}
		r := testing.Benchmark(func(b *testing.B) {
			for it := 0; it < b.N; it++ {
				allBuf = ov.RateAll(allBuf)
			}
		})
		rateAllNs[i] = float64(r.T.Nanoseconds()) / float64(r.N)
		var metrics map[string]float64
		if i == 1 {
			metrics = map[string]float64{"speedup-vs-serial": rateAllNs[0] / rateAllNs[1]}
		}
		rep.add(name, workers, metrics, r)
	}

	const (
		pn     = 1000
		deg    = 30
		excess = 10
	)
	var pruneNs [2]float64
	for i, full := range []bool{true, false} {
		po, err := buildBenchOverlay(pn, deg, 0, full)
		if err != nil {
			return err
		}
		u := 0
		for v := 1; v < pn; v++ {
			if po.Graph().Degree(v) > po.Graph().Degree(u) {
				u = v
			}
		}
		rng := rand.New(rand.NewSource(42))
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				po.SetCapacity(u, deg+excess)
				for po.Graph().Degree(u) < deg+excess {
					v := rng.Intn(pn)
					if v != u {
						po.Graph().AddEdge(u, v)
					}
				}
				b.StartTimer()
				po.SetCapacity(u, deg)
			}
		})
		pruneNs[i] = float64(r.T.Nanoseconds()) / float64(r.N)
		name := "PruneToCapacity/full-recompute"
		metrics := map[string]float64{"links-pruned/op": excess}
		if !full {
			name = "PruneToCapacity/incremental"
			metrics["speedup-vs-full"] = pruneNs[0] / pruneNs[1]
		}
		rep.add(name, 0, metrics, r)
	}

	const bn = 2000
	bnet := netmodel.NewEuclidean(bn, 1000, 1)
	var buildNs [2]float64
	for i, full := range []bool{true, false} {
		r := testing.Benchmark(func(b *testing.B) {
			for it := 0; it < b.N; it++ {
				cfg := core.DefaultConfig(bnet, int64(it))
				cfg.FullRecomputePrune = full
				if _, err := core.Build(bn, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		buildNs[i] = float64(r.T.Nanoseconds()) / float64(r.N)
		name := "BuildOverlay/full-recompute"
		metrics := map[string]float64{"nodes/op": bn}
		if !full {
			name = "BuildOverlay/incremental"
			metrics["speedup-vs-full"] = buildNs[0] / buildNs[1]
		}
		rep.add(name, 0, metrics, r)
	}

	// Build throughput on the batched join-wave constructor
	// (Config.JoinWave) at a size where the join walks already stride
	// well past L2. The nodes/sec metric is the committed
	// build-throughput baseline; the ns/op figure is what the CI
	// regression gate compares, so a reversion toward the old
	// super-linear cost-per-access shows up as a >2x ratio here long
	// before it would at 10⁶.
	const wvn = 20000
	wnet := netmodel.NewEuclidean(wvn, 1000, 1)
	wr := testing.Benchmark(func(b *testing.B) {
		for it := 0; it < b.N; it++ {
			cfg := core.DefaultConfig(wnet, int64(it))
			cfg.JoinWave = 4096
			if _, err := core.Build(wvn, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	wns := float64(wr.T.Nanoseconds()) / float64(wr.N)
	rep.add("BuildOverlay/wave-20000", 0, map[string]float64{
		"nodes/op":  wvn,
		"nodes/sec": float64(wvn) / (wns / 1e9),
	}, wr)

	// Observability overhead: one flood batch with the BatchObs
	// histograms off and on. The recorded overhead documents the cost
	// of the instrumentation fast path; the PR acceptance budget is a
	// < 5% regression for the instrumented run.
	fstore, err := experiments.PlaceObjects(2000, 20, 0.01, 7)
	if err != nil {
		return err
	}
	fg := o.Freeze()
	var floodNs [2]float64
	for i, instrumented := range []bool{false, true} {
		var fo *search.BatchObs
		name := "FloodBatch/uninstrumented/n=2000"
		if instrumented {
			fo = search.NewBatchObs()
			name = "FloodBatch/instrumented/n=2000"
		}
		r := testing.Benchmark(func(b *testing.B) {
			for it := 0; it < b.N; it++ {
				experiments.FloodBatch(fg, fstore, 4, 200, 1, 77, fo)
			}
		})
		floodNs[i] = float64(r.T.Nanoseconds()) / float64(r.N)
		metrics := map[string]float64{"queries/op": 200}
		if instrumented {
			metrics["overhead-vs-uninstrumented"] = floodNs[1]/floodNs[0] - 1
		}
		rep.add(name, 1, metrics, r)
	}
	return nil
}

// benchSearch measures the parallel query-batch engine on a 2000-node
// Makalu overlay: each mechanism's 1000-query batch sequential
// (workers=1) against the 8-worker sharded run, plus the walk kernel's
// steady-state allocation count. Sequential and parallel entries carry
// their worker counts so the speedup column is interpretable on any
// recording machine.
func benchSearch(rep *benchReport) error {
	const (
		n       = 2000
		queries = 1000
		ttl     = 4
		par     = 8
		seed    = 1
	)
	mk, err := experiments.BuildMakalu(n, seed)
	if err != nil {
		return err
	}
	store, err := experiments.PlaceObjects(n, 20, 0.01, seed+5)
	if err != nil {
		return err
	}
	g := mk.Graph

	// seqVsPar records one mechanism's batch at workers=1 and workers=8
	// and attaches the speedup to the parallel entry.
	seqVsPar := func(name string, run func(workers int)) {
		var ns [2]float64
		for i, workers := range []int{1, par} {
			w := workers
			label := name + "/sequential"
			if i == 1 {
				label = fmt.Sprintf("%s/parallel-%d", name, par)
			}
			r := testing.Benchmark(func(b *testing.B) {
				for it := 0; it < b.N; it++ {
					run(w)
				}
			})
			ns[i] = float64(r.T.Nanoseconds()) / float64(r.N)
			metrics := map[string]float64{"queries/op": queries}
			if i == 1 {
				metrics["speedup-vs-sequential"] = ns[0] / ns[1]
			}
			rep.add(label, w, metrics, r)
		}
	}

	seqVsPar("BatchFlood/n=2000", func(workers int) {
		experiments.FloodBatch(g, store, ttl, queries, workers, seed+11, nil)
	})

	walkCfg := search.DefaultWalkConfig()
	walkCfg.MaxSteps = 256
	seqVsPar("BatchRandomWalk/n=2000", func(workers int) {
		br := &search.BatchRunner{Graph: g, Workers: workers, Seed: seed + 13}
		br.Run(queries, func(k *search.Kernel, q int, rng *rand.Rand) search.Result {
			obj := store.RandomObject(rng)
			src := rng.Intn(n)
			return k.Walker().Random(src, walkCfg, func(u int) bool { return store.Has(u, obj) }, rng)
		})
	})

	ringCfg := search.RingConfig{StartTTL: 1, Step: 1, MaxTTL: 6}
	seqVsPar("BatchExpandingRing/n=2000", func(workers int) {
		br := &search.BatchRunner{Graph: g, Workers: workers, Seed: seed + 17}
		br.Run(queries, func(k *search.Kernel, q int, rng *rand.Rand) search.Result {
			obj := store.RandomObject(rng)
			src := rng.Intn(n)
			return search.ExpandingRing(k.Flooder(), src, ringCfg, func(u int) bool { return store.Has(u, obj) }, rng)
		})
	})

	ttCfg := topology.DefaultTwoTier()
	ttCfg.Seed = seed + 19
	tt := topology.NewTwoTier(n, ttCfg)
	ttg := tt.Graph.Freeze(nil)
	seqVsPar("BatchTwoTierFlood/n=2000", func(workers int) {
		if _, err := experiments.TwoTierFloodBatch(ttg, tt.IsUltra, store, 3, queries, workers, false, seed+23, nil); err != nil {
			panic(err)
		}
	})

	abfNet, err := search.BuildABFNetwork(g, store, search.DefaultABFConfig())
	if err != nil {
		return err
	}
	seqVsPar("BatchABFLookup/n=2000", func(workers int) {
		br := &search.BatchRunner{Graph: g, Workers: workers, Seed: seed + 29}
		br.Run(queries, func(k *search.Kernel, q int, rng *rand.Rand) search.Result {
			obj := store.RandomObject(rng)
			src := rng.Intn(n)
			return k.ABF(abfNet).Lookup(src, obj, 25, rng)
		})
	})

	// Walk-kernel steady state: the epoch-stamped scratch must keep
	// per-walk allocations at zero (the regression the batch engine's
	// throughput depends on).
	walker := search.NewWalker(g)
	wrng := rand.New(rand.NewSource(seed + 31))
	obj := store.RandomObject(wrng)
	match := func(u int) bool { return store.Has(u, obj) }
	walker.Random(0, walkCfg, match, wrng) // warm the scratch
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			walker.Random(i%n, walkCfg, match, wrng)
		}
	})
	rep.add("WalkerRandomWalk/n=2000", 1, map[string]float64{
		"allocs/op": float64(r.AllocsPerOp()),
		"bytes/op":  float64(r.AllocedBytesPerOp()),
	}, r)
	return nil
}
