package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"makalu/internal/core"
	"makalu/internal/netmodel"
)

// The -bench-json mode reruns the rating-engine micro-benchmarks
// (internal/core/bench_test.go scenarios) through the public API and
// writes a machine-readable report, so BENCH_core.json can be
// committed next to the code as the performance trajectory record.

// benchResult is one benchmark line of the report.
type benchResult struct {
	Name       string             `json:"name"`
	Iterations int                `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// benchReport is the BENCH_core.json document.
type benchReport struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Benchmarks  []benchResult `json:"benchmarks"`
}

func buildBenchOverlay(n, deg int, full bool) (*core.Overlay, error) {
	net := netmodel.NewEuclidean(n, 1000, 1)
	cfg := core.DefaultConfig(net, 1)
	if deg > 0 {
		caps := make([]int, n)
		for i := range caps {
			caps[i] = deg
		}
		cfg.Capacities = caps
	}
	cfg.FullRecomputePrune = full
	return core.Build(n, cfg)
}

// runBenchJSON executes the benchmark suite and writes the report to
// path. Scenarios mirror internal/core/bench_test.go: rating a node,
// the batched RateAll pass, draining 10 excess links at mean degree
// ≈ 30 on both prune engines, and full 2000-node construction on both.
func runBenchJSON(path string) error {
	// Fail on an unwritable path now, not after minutes of benchmarking.
	probe, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	probe.Close()
	rep := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	add := func(name string, metrics map[string]float64, r testing.BenchmarkResult) {
		rep.Benchmarks = append(rep.Benchmarks, benchResult{
			Name:       name,
			Iterations: r.N,
			NsPerOp:    float64(r.T.Nanoseconds()) / float64(r.N),
			Metrics:    metrics,
		})
		fmt.Printf("%-40s %12.0f ns/op  (%d iterations)\n",
			name, float64(r.T.Nanoseconds())/float64(r.N), r.N)
	}

	o, err := buildBenchOverlay(2000, 0, false)
	if err != nil {
		return err
	}
	var buf []core.RatingInfo
	add("RateNeighbors/n=2000", nil, testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf = o.RateNeighbors(i%2000, buf[:0])
		}
	}))
	var allBuf [][]core.RatingInfo
	add("RateAll/n=2000", nil, testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			allBuf = o.RateAll(allBuf)
		}
	}))

	const (
		pn     = 1000
		deg    = 30
		excess = 10
	)
	var pruneNs [2]float64
	for i, full := range []bool{true, false} {
		po, err := buildBenchOverlay(pn, deg, full)
		if err != nil {
			return err
		}
		u := 0
		for v := 1; v < pn; v++ {
			if po.Graph().Degree(v) > po.Graph().Degree(u) {
				u = v
			}
		}
		rng := rand.New(rand.NewSource(42))
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				po.SetCapacity(u, deg+excess)
				for po.Graph().Degree(u) < deg+excess {
					v := rng.Intn(pn)
					if v != u {
						po.Graph().AddEdge(u, v)
					}
				}
				b.StartTimer()
				po.SetCapacity(u, deg)
			}
		})
		pruneNs[i] = float64(r.T.Nanoseconds()) / float64(r.N)
		name := "PruneToCapacity/full-recompute"
		metrics := map[string]float64{"links-pruned/op": excess}
		if !full {
			name = "PruneToCapacity/incremental"
			metrics["speedup-vs-full"] = pruneNs[0] / pruneNs[1]
		}
		add(name, metrics, r)
	}

	const bn = 2000
	bnet := netmodel.NewEuclidean(bn, 1000, 1)
	var buildNs [2]float64
	for i, full := range []bool{true, false} {
		r := testing.Benchmark(func(b *testing.B) {
			for it := 0; it < b.N; it++ {
				cfg := core.DefaultConfig(bnet, int64(it))
				cfg.FullRecomputePrune = full
				if _, err := core.Build(bn, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		buildNs[i] = float64(r.T.Nanoseconds()) / float64(r.N)
		name := "BuildOverlay/full-recompute"
		metrics := map[string]float64{"nodes/op": bn}
		if !full {
			name = "BuildOverlay/incremental"
			metrics["speedup-vs-full"] = buildNs[0] / buildNs[1]
		}
		add(name, metrics, r)
	}

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("[benchmark report written to %s]\n", path)
	return nil
}
