package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"makalu/internal/experiments"
)

// runScale drives the -exp scale sweep: parse the size list, run the
// build+analysis at each size, print the table, and optionally write
// the JSON record (the committed BENCH_scale.json).
func runScale(sizeList string, landmarks int, seed int64, jsonPath string) error {
	var sizes []int
	for _, f := range strings.Split(sizeList, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return fmt.Errorf("-scale-sizes: %q is not an integer", f)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return fmt.Errorf("-scale-sizes: no sizes given")
	}
	start := time.Now()
	res, err := experiments.RunScale(sizes, landmarks, seed)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	fmt.Printf("[scale completed in %v]\n", time.Since(start).Round(time.Millisecond))
	if jsonPath == "" {
		return nil
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("[scale report written to %s]\n", jsonPath)
	return nil
}
