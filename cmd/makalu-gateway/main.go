// Command makalu-gateway fronts a replicated tier of makalu-node serve
// backends: it routes each lookup to a backend by consistent hash of
// the request key (so every backend's result cache sees a stable slice
// of the keyspace), health-checks the set and evicts/rejoins members,
// retries transport failures on the next ring replica, and hedges slow
// requests — all safe because serve answers are a pure function of
// (seed, epoch, key), so any replica's reply is bit-identical.
//
// Typical tier:
//
//	makalu-node -serve-tcp :9101 -serve-http :9201 -rng-seed 1 &
//	makalu-node -serve-tcp :9102 -serve-http :9202 -rng-seed 1 &
//	makalu-node -serve-tcp :9103 -serve-http :9203 -rng-seed 1 &
//	makalu-gateway -tcp :9100 -http :9200 \
//	    -backends 127.0.0.1:9101,127.0.0.1:9102,127.0.0.1:9103 \
//	    -backend-http 127.0.0.1:9201,127.0.0.1:9202,127.0.0.1:9203
//	makalu-loadgen -tcp 127.0.0.1:9100 ...
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"makalu/internal/gateway"
	"makalu/internal/obs"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		tcpAddr     = flag.String("tcp", "", "serve the line protocol to clients on this address")
		httpAddr    = flag.String("http", "", "serve /healthz and /objects on this address")
		backends    = flag.String("backends", "", "comma-separated backend TCP (line protocol) addresses (required)")
		backendHTTP = flag.String("backend-http", "", "comma-separated backend HTTP addresses, aligned with -backends (empty entries probe via TCP Z)")
		route       = flag.String("route", gateway.RouteHash, "routing policy: hash (key affinity) or random (uniform spray)")
		vnodes      = flag.Int("vnodes", gateway.DefaultVNodes, "virtual nodes per backend on the hash ring")
		pool        = flag.Int("pool", 4, "pipelined connections per backend")
		noHedge     = flag.Bool("no-hedge", false, "disable hedged requests")
		hedgeMin    = flag.Duration("hedge-min", time.Millisecond, "hedge delay floor")
		hedgeMax    = flag.Duration("hedge-max", 50*time.Millisecond, "hedge delay ceiling (used until p99 data exists)")
		healthIvl   = flag.Duration("health-interval", 500*time.Millisecond, "health probe period")
		failThresh  = flag.Int("fail-threshold", 2, "consecutive failures (probe or forward) that evict a backend")
		maxQueue    = flag.Int("max-queue-depth", 0, "evict a backend whose reported queue depth exceeds this (0 = off)")
		staleEvicts = flag.Bool("stale-epoch-evicts", false, "evict backends reporting an older overlay epoch than their peers")
		readTimeout = flag.Duration("read-timeout", 30*time.Second, "per-reply backend read deadline")
		debug       = flag.Bool("debug", false, "expose /debug/metrics and /debug/pprof over HTTP")
	)
	flag.Parse()
	if *tcpAddr == "" && *httpAddr == "" {
		fmt.Fprintln(os.Stderr, "makalu-gateway: need -tcp and/or -http to serve on")
		return 2
	}
	specs, err := parseBackends(*backends, *backendHTTP)
	if err != nil {
		fmt.Fprintln(os.Stderr, "makalu-gateway:", err)
		return 2
	}

	reg := obs.NewRegistry()
	gw, err := gateway.New(gateway.Config{
		Backends:         specs,
		Route:            *route,
		VNodes:           *vnodes,
		PoolSize:         *pool,
		NoHedge:          *noHedge,
		HedgeMin:         *hedgeMin,
		HedgeMax:         *hedgeMax,
		HealthInterval:   *healthIvl,
		FailThreshold:    *failThresh,
		MaxQueueDepth:    *maxQueue,
		StaleEpochEvicts: *staleEvicts,
		ReadTimeout:      *readTimeout,
		Metrics:          reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "makalu-gateway:", err)
		return 1
	}
	defer gw.Close()
	fmt.Printf("gateway over %d backends (route=%s, %d vnodes, pool %d)\n",
		len(specs), *route, *vnodes, *pool)

	var httpSrv *http.Server
	if *httpAddr != "" {
		httpSrv = gateway.NewHTTPServer(*httpAddr, gateway.NewHTTPHandler(gateway.HTTPConfig{
			Gateway: gw, Metrics: reg, Debug: *debug,
		}))
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "http: %v\n", err)
			}
		}()
		fmt.Printf("serving HTTP on %s\n", *httpAddr)
	}
	var tcpSrv *gateway.TCPServer
	if *tcpAddr != "" {
		tcpSrv, err = gateway.NewTCPServer(*tcpAddr, gw, gateway.TCPConfig{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "makalu-gateway:", err)
			return 1
		}
		fmt.Printf("serving TCP lookups on %s\n", tcpSrv.Addr())
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	s := <-sigs
	fmt.Printf("received %v, shutting down\n", s)
	if httpSrv != nil {
		httpSrv.Close()
	}
	if tcpSrv != nil {
		tcpSrv.Close()
	}
	return 0
}

// parseBackends zips the -backends and -backend-http lists into specs.
// The HTTP list may be shorter (or absent); missing or empty entries
// mean the health checker probes that backend over TCP with Z.
func parseBackends(tcpList, httpList string) ([]gateway.BackendSpec, error) {
	if strings.TrimSpace(tcpList) == "" {
		return nil, fmt.Errorf("need -backends host:port[,host:port...]")
	}
	addrs := strings.Split(tcpList, ",")
	var https []string
	if strings.TrimSpace(httpList) != "" {
		https = strings.Split(httpList, ",")
		if len(https) != len(addrs) {
			return nil, fmt.Errorf("-backend-http has %d entries, -backends has %d — lists must align", len(https), len(addrs))
		}
	}
	specs := make([]gateway.BackendSpec, 0, len(addrs))
	for i, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			return nil, fmt.Errorf("empty entry %d in -backends", i)
		}
		spec := gateway.BackendSpec{Addr: a}
		if https != nil {
			spec.HTTP = strings.TrimSpace(https[i])
		}
		specs = append(specs, spec)
	}
	return specs, nil
}
