// Command makalu-sim builds a Makalu overlay, places replicated
// content on it and runs search workloads or a churn simulation,
// reporting the metrics the paper's evaluation uses.
//
// Usage:
//
//	makalu-sim -n 10000 -search flood -ttl 4 -replication 0.01
//	makalu-sim -n 10000 -search abf -ttl 25 -replication 0.001
//	makalu-sim -n 2000 -churn -duration 200
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"makalu/internal/content"
	"makalu/internal/core"
	"makalu/internal/netmodel"
	"makalu/internal/search"
	"makalu/internal/sim"
)

func main() {
	var (
		n           = flag.Int("n", 10000, "overlay size")
		seed        = flag.Int64("seed", 1, "random seed")
		mode        = flag.String("search", "flood", "search mechanism: flood, walk, ring, abf")
		ttl         = flag.Int("ttl", 4, "TTL / hop budget")
		queries     = flag.Int("queries", 1000, "number of queries")
		objects     = flag.Int("objects", 50, "distinct objects")
		replication = flag.Float64("replication", 0.01, "replica fraction per object")
		churn       = flag.Bool("churn", false, "run a churn simulation instead of searches")
		duration    = flag.Float64("duration", 100, "churn simulation duration")
	)
	flag.Parse()

	start := time.Now()
	net := netmodel.NewEuclidean(*n, 1000, *seed)
	overlay, err := core.Build(*n, core.DefaultConfig(net, *seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("built Makalu overlay: %d nodes, mean degree %.2f (%v)\n",
		overlay.N(), overlay.MeanDegree(), time.Since(start).Round(time.Millisecond))

	if *churn {
		cfg := sim.DefaultChurnConfig(*seed)
		cfg.Duration = *duration
		// Probe live search quality at every snapshot.
		churnStore, err := content.Place(*n, content.PlacementConfig{
			Objects: *objects, Replication: *replication, MinReplicas: 1, Seed: *seed + 3,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.SearchProbes = 50
		cfg.SearchTTL = *ttl
		cfg.SearchStore = churnStore
		res, err := sim.RunChurn(overlay, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("churn: %d departures, %d rejoins\n", res.Departures, res.Rejoins)
		fmt.Printf("%8s %8s %12s %8s %10s %10s\n", "time", "live", "components", "giant", "meandeg", "search")
		for _, s := range res.Timeline {
			// FmtPercent keeps the -1 "probing off" sentinel from
			// rendering as a bogus -100%.
			fmt.Printf("%8.1f %8d %12d %7.1f%% %10.2f %10s\n",
				s.Time, s.Live, s.Components, 100*s.GiantFraction, s.MeanDegree, sim.FmtPercent(s.SearchSuccess))
		}
		sum := sim.SummarizeTimeline(res.Timeline)
		fmt.Printf("summary: giant min %.1f%% mean %.1f%%, search mean %s (over %d probed snapshots)\n",
			100*sum.MinGiant, 100*sum.MeanGiant, sim.FmtPercent(sum.MeanSearchSuccess), sum.SearchSamples)
		return
	}

	store, err := content.Place(*n, content.PlacementConfig{
		Objects: *objects, Replication: *replication, MinReplicas: 1, Seed: *seed + 3,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	g := overlay.Freeze()
	rng := rand.New(rand.NewSource(*seed + 5))
	agg := search.NewAggregate()

	start = time.Now()
	switch *mode {
	case "flood":
		fl := search.NewFlooder(g)
		for q := 0; q < *queries; q++ {
			obj := store.RandomObject(rng)
			agg.Add(fl.Flood(rng.Intn(*n), *ttl, func(u int) bool { return store.Has(u, obj) }))
		}
	case "walk":
		cfg := search.DefaultWalkConfig()
		cfg.MaxSteps = *ttl * 256
		for q := 0; q < *queries; q++ {
			obj := store.RandomObject(rng)
			agg.Add(search.RandomWalk(g, rng.Intn(*n), cfg, func(u int) bool { return store.Has(u, obj) }, rng))
		}
	case "ring":
		fl := search.NewFlooder(g)
		cfg := search.RingConfig{StartTTL: 1, Step: 1, MaxTTL: *ttl}
		for q := 0; q < *queries; q++ {
			obj := store.RandomObject(rng)
			agg.Add(search.ExpandingRing(fl, rng.Intn(*n), cfg, func(u int) bool { return store.Has(u, obj) }, rng))
		}
	case "abf":
		abfStart := time.Now()
		abf, err := search.BuildABFNetwork(g, store, search.DefaultABFConfig())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("built attenuated Bloom filters: %d bytes total (%v)\n",
			abf.MemoryBytes(), time.Since(abfStart).Round(time.Millisecond))
		router := search.NewABFRouter(abf)
		for q := 0; q < *queries; q++ {
			obj := store.RandomObject(rng)
			agg.Add(router.Lookup(rng.Intn(*n), obj, *ttl, rng))
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown search mode %q\n", *mode)
		os.Exit(2)
	}
	fmt.Printf("%s search, TTL %d, %.2f%% replication: %s (%v)\n",
		*mode, *ttl, *replication*100, agg, time.Since(start).Round(time.Millisecond))
	fmt.Printf("hop quantiles of successful queries: p50=%d p90=%d p99=%d\n",
		agg.Hops.Quantile(0.5), agg.Hops.Quantile(0.9), agg.Hops.Quantile(0.99))
	if agg.MeanLatency() > 0 {
		fmt.Printf("mean first-match network latency: %.1f (model units)\n", agg.MeanLatency())
	}
}
