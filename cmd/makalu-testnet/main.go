// Command makalu-testnet launches and supervises a multi-process
// Makalu network on one machine: hundreds of real makalu-node
// processes over real TCP, converged to the expander profile, then
// driven through a deny-list partition and/or a SIGKILL wave while a
// driver-side peer measures query latency. The aggregate lands in a
// BENCH_testnet.json row.
//
// Usage:
//
//	# the acceptance run: 500 real processes, 30% killed
//	makalu-testnet -nodes 500 -kill 0.30 -seed 1 -json BENCH_testnet.json
//
//	# CI smoke: 20 processes, one kill wave, a partition phase
//	makalu-testnet -nodes 20 -kill 0.30 -partition 0.5 \
//	    -json /tmp/testnet.json -baseline BENCH_testnet.json
//
// Every schedule decision (spawn fan-out, kill victims, partition
// cut, per-process rng seeds) derives from -seed, so the kill
// schedule is bit-reproducible; the row records its hash. -baseline
// compares the fresh row against a committed BENCH_testnet.json and
// exits non-zero on regression, mirroring the bench-regression gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"makalu/internal/testnet"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 100, "process count")
		capacity  = flag.Int("capacity", 10, "per-node neighbor budget")
		kill      = flag.Float64("kill", 0.30, "fraction of processes to SIGKILL after convergence (0 = no wave)")
		seed      = flag.Int64("seed", 1, "driver seed; all schedule decisions derive from it")
		basePort  = flag.Int("base-port", 21000, "node i listens on 127.0.0.1:base-port+i")
		bin       = flag.String("bin", "", "makalu-node binary (empty = go build it into the run dir)")
		dir       = flag.String("dir", "", "run directory for logs/status/deny files (empty = temp dir, removed unless -keep)")
		keep      = flag.Bool("keep", false, "keep the run directory for post-mortem")
		manage    = flag.Duration("manage-interval", 500*time.Millisecond, "per-node management period")
		snapshot  = flag.Duration("snapshot-interval", 0, "per-node status snapshot period (0 = manage interval)")
		batch     = flag.Int("spawn-batch", 25, "processes spawned per stagger step")
		stagger   = flag.Duration("spawn-stagger", 200*time.Millisecond, "pause between spawn batches")
		fanout    = flag.Int("seed-fanout", 8, "bootstrap seed pool size (joiners pick among the first N nodes)")
		converge  = flag.Duration("converge-timeout", 3*time.Minute, "bound on the convergence wait")
		settle    = flag.Duration("settle-timeout", 2*time.Minute, "bound on the post-kill eviction watch / partition heal")
		queries   = flag.Int("queries", 50, "queries per measurement phase")
		ttl       = flag.Int("ttl", 6, "query TTL")
		queryWait = flag.Duration("query-timeout", 5*time.Second, "per-query wait for the first hit")
		partition = flag.Float64("partition", 0, "fraction to cut off via deny lists before the kill wave (0 = no partition phase)")
		hold      = flag.Duration("partition-hold", 10*time.Second, "how long the partition holds before healing")
		jsonOut   = flag.String("json", "", "write/merge the report row into this BENCH_testnet.json")
		baseline  = flag.String("baseline", "", "committed BENCH_testnet.json to compare against; exit non-zero on regression")
		degTol    = flag.Float64("degree-tolerance", 0.10, "allowed relative mean-degree deviation vs -baseline")
		latFactor = flag.Float64("max-latency-regression", 3.0, "maximum post-kill query p99 ratio vs -baseline")
	)
	flag.Parse()

	// Sub-second management across hundreds of processes on one CPU
	// starves connection handling in every node at once; the driver then
	// misreads the stalls as convergence failure.
	if runtime.GOMAXPROCS(0) == 1 && *manage < time.Second {
		fmt.Fprintf(os.Stderr,
			"warning: GOMAXPROCS=1 with -manage-interval %v; sub-second management on a single CPU "+
				"starves connection handling — raise -manage-interval to >=1s or set GOMAXPROCS>1\n",
			*manage)
	}

	cfg := testnet.Config{
		Nodes:             *nodes,
		Capacity:          *capacity,
		Seed:              *seed,
		KillFraction:      *kill,
		BasePort:          *basePort,
		Bin:               *bin,
		Dir:               *dir,
		ManageInterval:    *manage,
		SnapshotInterval:  *snapshot,
		SpawnBatch:        *batch,
		SpawnStagger:      *stagger,
		SeedFanout:        *fanout,
		ConvergeTimeout:   *converge,
		SettleTimeout:     *settle,
		Queries:           *queries,
		QueryTTL:          *ttl,
		QueryTimeout:      *queryWait,
		PartitionFraction: *partition,
		PartitionHold:     *hold,
		Logf: func(format string, args ...any) {
			fmt.Printf("[%s] %s\n", time.Now().Format("15:04:05"), fmt.Sprintf(format, args...))
		},
	}
	if cfg.Dir == "" {
		tmp, err := os.MkdirTemp("", "makalu-testnet-")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Dir = tmp
		if !*keep {
			defer os.RemoveAll(tmp)
		}
	}
	if cfg.Bin == "" {
		b, err := testnet.BuildNodeBinary(cfg.Dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Bin = b
	}
	fmt.Printf("run dir: %s\n", cfg.Dir)

	row, err := testnet.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "testnet run failed: %v\n", err)
		os.Exit(1)
	}
	printRow(row)

	if *jsonOut != "" {
		rep, err := testnet.LoadReport(*jsonOut)
		if err != nil {
			rep = &testnet.Report{}
		}
		rep.MergeRow(row)
		if err := rep.WriteFile(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("[row merged into %s]\n", *jsonOut)
	}
	if *baseline != "" {
		if err := testnet.CompareBaseline(row, *baseline, *degTol, *latFactor); err != nil {
			fmt.Fprintf(os.Stderr, "baseline regression: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[baseline check vs %s passed]\n", *baseline)
	}
}

func printRow(row testnet.Row) {
	fmt.Println()
	fmt.Printf("testnet: %d nodes, capacity %d, kill %.0f%%, seed %d\n",
		row.Nodes, row.Capacity, row.KillFraction*100, row.Seed)
	fmt.Printf("  converged      %v (mean degree %.2f vs simulator %.2f; p10/p50/p90 = %.0f/%.0f/%.0f)\n",
		row.Converged, row.Degrees.Mean, row.SimMeanDegree, row.Degrees.P10, row.Degrees.P50, row.Degrees.P90)
	if row.Partition != nil {
		p := row.Partition
		fmt.Printf("  partition      cut %d|%d: partitioned=%v healed=%v\n", p.GroupA, p.GroupB, p.PartitionedOK, p.HealedOK)
	}
	if row.Killed > 0 {
		fmt.Printf("  kill wave      %d killed, %d survivors (schedule %s)\n", row.Killed, row.Survivors, row.KillScheduleHash)
		fmt.Printf("  evictions      %.1f%% of survivors clean within %.0fms (p50 %.0fms, p95 %.0fms)\n",
			row.EvictWithinWindow*100, row.EvictWindowMS, row.EvictP50MS, row.EvictP95MS)
		fmt.Printf("  post-kill deg  mean %.2f\n", row.PostKillDegrees.Mean)
	}
	fmt.Printf("  queries pre    success %.2f, p50 %.1fms, p99 %.1fms (%d issued)\n",
		row.QuerySuccessPre, row.QueryPre.P50, row.QueryPre.P99, row.QueryPre.Count)
	if row.Killed > 0 {
		fmt.Printf("  queries post   success %.2f, p50 %.1fms, p99 %.1fms (%d issued)\n",
			row.QuerySuccessPost, row.QueryPost.P50, row.QueryPost.P99, row.QueryPost.Count)
	}
	fmt.Printf("  wall time      %.1fs (spawn %.1fs)\n", row.WallSeconds, row.SpawnSeconds)
}
