package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Row is one BENCH_serve.json measurement. Identity (which row a new
// measurement replaces) is (label, proto, mech, zipf): the same
// serving configuration re-measured overwrites itself, different
// configurations accumulate.
type Row struct {
	Label        string  `json:"label"`
	Proto        string  `json:"proto"`
	Mech         string  `json:"mech"`
	TTL          int     `json:"ttl"`
	Zipf         float64 `json:"zipf"`
	Conns        int     `json:"conns"`
	Seed         int64   `json:"seed"`
	Objects      int     `json:"objects"`
	Queries      int     `json:"queries"`
	OK           int     `json:"ok"`
	Shed         int     `json:"shed"`
	RateLimited  int     `json:"rate_limited"`
	Errors       int     `json:"errors"`
	WallSeconds  float64 `json:"wall_seconds"`
	QPS          float64 `json:"qps"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	P999Ms       float64 `json:"p999_ms"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	FoundRate    float64 `json:"found_rate"`
	// Verified counts answers cross-checked bit-identical against a
	// -verify-against recording (0 when verification was not requested).
	Verified int `json:"verified,omitempty"`
}

func rowName(r Row) string {
	if r.Label != "" {
		return r.Label
	}
	return fmt.Sprintf("%s/%s", r.Proto, r.Mech)
}

func (res *result) row(label, proto, mech string, ttl int, zipf float64, conns int, seed int64, objects int) Row {
	pct := func(q float64) float64 {
		if len(res.latencies) == 0 {
			return 0
		}
		i := int(q * float64(len(res.latencies)))
		if i >= len(res.latencies) {
			i = len(res.latencies) - 1
		}
		return float64(res.latencies[i]) / float64(time.Millisecond)
	}
	row := Row{
		Label: label, Proto: proto, Mech: mech, TTL: ttl, Zipf: zipf,
		Conns: conns, Seed: seed, Objects: objects,
		Queries: res.ok + res.shed + res.limited + res.errors,
		OK:      res.ok, Shed: res.shed, RateLimited: res.limited, Errors: res.errors,
		WallSeconds: res.wall.Seconds(),
		P50Ms:       pct(0.50), P99Ms: pct(0.99), P999Ms: pct(0.999),
	}
	if row.WallSeconds > 0 {
		row.QPS = float64(res.ok) / row.WallSeconds
	}
	if res.ok > 0 {
		row.CacheHitRate = float64(res.hits) / float64(res.ok)
		row.FoundRate = float64(res.found) / float64(res.ok)
	}
	return row
}

// Report is the BENCH_serve.json document, matching the repo's other
// BENCH files: a generated stamp plus accumulated rows.
type Report struct {
	Generated string `json:"generated"`
	Rows      []Row  `json:"rows"`
}

func sameIdentity(a, b Row) bool {
	return a.Label == b.Label && a.Proto == b.Proto && a.Mech == b.Mech && a.Zipf == b.Zipf
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &Report{}, nil
		}
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &r, nil
}

func mergeRow(path string, row Row) error {
	r, err := loadReport(path)
	if err != nil {
		return err
	}
	replaced := false
	for i := range r.Rows {
		if sameIdentity(r.Rows[i], row) {
			r.Rows[i] = row
			replaced = true
			break
		}
	}
	if !replaced {
		r.Rows = append(r.Rows, row)
	}
	r.Generated = time.Now().UTC().Format(time.RFC3339)
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// compareBaseline gates a fresh row against the committed one with the
// same identity: QPS must hold a floor fraction of the baseline and
// p99 must stay under a ceiling multiple — the serve bench-regression
// contract CI enforces.
func compareBaseline(row Row, path string, minQPSFactor, maxP99Factor float64) error {
	base, err := loadReport(path)
	if err != nil {
		return err
	}
	for _, b := range base.Rows {
		if !sameIdentity(b, row) {
			continue
		}
		if floor := b.QPS * minQPSFactor; row.QPS < floor {
			return fmt.Errorf("row %s: qps %.0f below floor %.0f (baseline %.0f x factor %.2f)",
				rowName(row), row.QPS, floor, b.QPS, minQPSFactor)
		}
		if ceil := b.P99Ms * maxP99Factor; row.P99Ms > ceil {
			return fmt.Errorf("row %s: p99 %.3fms above ceiling %.3fms (baseline %.3fms x factor %.2f)",
				rowName(row), row.P99Ms, ceil, b.P99Ms, maxP99Factor)
		}
		return nil
	}
	return fmt.Errorf("baseline %s has no row matching %s (proto %s, mech %s, zipf %g)",
		path, rowName(row), row.Proto, row.Mech, row.Zipf)
}
