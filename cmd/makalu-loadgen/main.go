// Command makalu-loadgen drives a makalu-node service-mode daemon with
// a Zipf query workload (the trace model's popularity skew) and
// measures what the serving stack sustains: QPS, exact client-side
// p50/p99/p999 latency, cache hit rate, and the shed/rate-limit
// counts. Rows merge into BENCH_serve.json; -baseline compares a fresh
// row against the committed file and exits non-zero on regression,
// mirroring the repo's other bench gates.
//
// The object catalog always comes from the daemon's HTTP /objects
// endpoint; the load itself goes over HTTP (-proto http) or the raw
// TCP line protocol (-proto tcp, the low-overhead path).
//
// Both -http and -tcp accept comma-separated address lists; worker w
// drives target w mod len(targets), so a replicated tier can be loaded
// either through the gateway (one address) or spread directly over the
// backends (N addresses — the no-affinity comparison point).
//
// -verify-out records every accepted answer (found, hop, messages,
// visited) per object; -verify-against replays a recorded file and
// fails on any bit-level mismatch — the purity check that a gateway,
// any backend replica, and a single direct daemon all serve identical
// results.
//
// Usage:
//
//	makalu-node -serve-http 127.0.0.1:8080 -serve-tcp 127.0.0.1:8081 &
//	makalu-loadgen -http 127.0.0.1:8080 -tcp 127.0.0.1:8081 -proto tcp \
//	    -queries 50000 -zipf 1.2 -label cache-on -json BENCH_serve.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"makalu/internal/serve"
	"makalu/internal/trace"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		httpAddr = flag.String("http", "127.0.0.1:8080", "daemon HTTP address(es), comma-separated (catalog from the first; HTTP load round-robins workers)")
		tcpAddr  = flag.String("tcp", "", "daemon TCP line-protocol address(es), comma-separated (required for -proto tcp)")
		proto    = flag.String("proto", "http", "load path: http or tcp")
		queries  = flag.Int("queries", 50000, "total queries to send")
		conns    = flag.Int("conns", 4, "concurrent connections/clients")
		mechName = flag.String("mech", "flood", "search mechanism: flood, walk, or abf")
		ttl      = flag.Int("ttl", 4, "query TTL")
		zipf     = flag.Float64("zipf", 1.2, "Zipf exponent of the object popularity skew (0 = uniform)")
		seed     = flag.Int64("seed", 1, "workload seed")
		rate     = flag.Float64("rate", 0, "target offered load in queries/second (0 = closed loop, as fast as the daemon answers)")
		label    = flag.String("label", "", "row label (e.g. cache-on); identifies the row in BENCH_serve.json")
		jsonOut  = flag.String("json", "", "write/merge the result row into this BENCH_serve.json")
		baseline = flag.String("baseline", "", "committed BENCH_serve.json to gate against; exit non-zero on regression")
		qpsTol   = flag.Float64("min-qps-factor", 0.5, "measured QPS must be >= this fraction of the baseline row's")
		p99Tol   = flag.Float64("max-p99-factor", 2.0, "measured p99 must be <= this multiple of the baseline row's")
		verOut   = flag.String("verify-out", "", "record accepted answers (found/hop/messages/visited per object) into this JSON file")
		verIn    = flag.String("verify-against", "", "compare accepted answers against this recorded file; any mismatch fails the run")
	)
	flag.Parse()

	mech, err := serve.ParseMechanism(*mechName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *proto != "http" && *proto != "tcp" {
		fmt.Fprintf(os.Stderr, "bad -proto %q (want http or tcp)\n", *proto)
		return 2
	}
	httpAddrs := splitAddrs(*httpAddr)
	tcpAddrs := splitAddrs(*tcpAddr)
	if *proto == "tcp" && len(tcpAddrs) == 0 {
		fmt.Fprintln(os.Stderr, "-proto tcp needs -tcp <addr>[,<addr>...]")
		return 2
	}
	if len(httpAddrs) == 0 {
		fmt.Fprintln(os.Stderr, "need -http <addr> for the catalog fetch")
		return 2
	}

	objects, err := fetchCatalog(httpAddrs[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "catalog fetch: %v\n", err)
		return 1
	}
	fmt.Printf("catalog: %d objects from %s\n", len(objects), httpAddrs[0])

	// The workload is the trace model's Zipf draw order, shared across
	// connections: worker w sends events w, w+conns, w+2*conns, ... so
	// the object sequence is independent of scheduling.
	stream, err := trace.NewStream(trace.StreamConfig{
		Duration: float64(*queries), Rate: 1.5, Objects: len(objects), ZipfExp: *zipf, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	work := make([]uint64, *queries)
	for i := range work {
		ev, ok := stream.Next()
		if !ok {
			fmt.Fprintln(os.Stderr, "trace stream exhausted before the query budget")
			return 1
		}
		work[i] = objects[ev.Object]
	}

	res, err := run(*proto, httpAddrs, tcpAddrs, work, mech, *ttl, *conns, *rate)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	row := res.row(*label, *proto, mech.String(), *ttl, *zipf, *conns, *seed, len(objects))
	if *verIn != "" {
		verified, err := verifyAgainst(*verIn, res.answers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "VERIFY FAILED: %v\n", err)
			return 1
		}
		row.Verified = verified
		fmt.Printf("verified %d answers bit-identical against %s\n", verified, *verIn)
	}
	fmt.Printf("%s: %d ok (%d shed, %d limited, %d errors) in %.2fs — %.0f qps, "+
		"p50 %.3fms p99 %.3fms p999 %.3fms, cache hit %.1f%%, found %.1f%%\n",
		rowName(row), row.OK, row.Shed, row.RateLimited, row.Errors, row.WallSeconds,
		row.QPS, row.P50Ms, row.P99Ms, row.P999Ms, 100*row.CacheHitRate, 100*row.FoundRate)

	if *verOut != "" {
		if err := writeAnswers(*verOut, res.answers); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *verOut, err)
			return 1
		}
		fmt.Printf("%d answers recorded into %s\n", len(res.answers), *verOut)
	}
	if *jsonOut != "" {
		if err := mergeRow(*jsonOut, row); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonOut, err)
			return 1
		}
		fmt.Printf("row merged into %s\n", *jsonOut)
	}
	if *baseline != "" {
		if err := compareBaseline(row, *baseline, *qpsTol, *p99Tol); err != nil {
			fmt.Fprintf(os.Stderr, "BASELINE REGRESSION: %v\n", err)
			return 1
		}
		fmt.Printf("baseline check passed against %s\n", *baseline)
	}
	return 0
}

// fetchCatalog pulls the servable object ids from the daemon.
func fetchCatalog(httpAddr string) ([]uint64, error) {
	resp, err := http.Get("http://" + httpAddr + "/objects")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/objects: status %d", resp.StatusCode)
	}
	var doc struct {
		Objects []string `json:"objects"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	if len(doc.Objects) == 0 {
		return nil, fmt.Errorf("daemon serves no objects")
	}
	out := make([]uint64, len(doc.Objects))
	for i, s := range doc.Objects {
		v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("object %q: %v", s, err)
		}
		out[i] = v
	}
	return out, nil
}

// answer is the deterministic part of one accepted reply — everything
// but the cache-hit bit, which legitimately varies between servers.
// By the serve purity contract, two accepted answers for the same
// object (same mech/ttl/seed/epoch) must be identical, whoever served
// them.
type answer struct {
	Found    bool `json:"found"`
	Hop      int  `json:"hop"`
	Messages int  `json:"messages"`
	Visited  int  `json:"visited"`
}

// result aggregates one run; latencies hold only accepted (H/200)
// requests, so percentiles measure served quality, not shed turnaround.
type result struct {
	wall      time.Duration
	latencies []time.Duration
	ok        int
	shed      int
	limited   int
	errors    int
	hits      int
	found     int
	answers   map[uint64]answer
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func run(proto string, httpAddrs, tcpAddrs []string, work []uint64, mech serve.Mechanism, ttl, conns int, rate float64) (*result, error) {
	type shard struct {
		lats                                     []time.Duration
		ok, shed, limited, errorsN, hits, foundN int
		answers                                  map[uint64]answer
	}
	shards := make([]shard, conns)
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	start := time.Now()
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var send func(obj uint64) (status byte, cacheHit bool, ans answer, err error)
			switch proto {
			case "tcp":
				conn, err := net.Dial("tcp", tcpAddrs[w%len(tcpAddrs)])
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				defer conn.Close()
				r := bufio.NewReaderSize(conn, 16<<10)
				send = func(obj uint64) (byte, bool, answer, error) {
					if _, err := fmt.Fprintf(conn, "Q %s %d %d\n", mech, obj, ttl); err != nil {
						return 0, false, answer{}, err
					}
					line, err := r.ReadString('\n')
					if err != nil {
						return 0, false, answer{}, err
					}
					return parseTCPReply(line)
				}
			default:
				client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 2}}
				clientID := fmt.Sprintf("loadgen-%d", w)
				base := fmt.Sprintf("http://%s/lookup?mech=%s&ttl=%d&obj=",
					httpAddrs[w%len(httpAddrs)], mech, ttl)
				send = func(obj uint64) (byte, bool, answer, error) {
					req, err := http.NewRequest(http.MethodGet, base+strconv.FormatUint(obj, 10), nil)
					if err != nil {
						return 0, false, answer{}, err
					}
					req.Header.Set("X-Makalu-Client", clientID)
					resp, err := client.Do(req)
					if err != nil {
						return 0, false, answer{}, err
					}
					defer resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusOK:
						var reply serve.LookupReply
						if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
							return 0, false, answer{}, err
						}
						return 'H', reply.CacheHit, answer{
							Found: reply.Found, Hop: reply.FirstMatchHop,
							Messages: reply.Messages, Visited: reply.Visited,
						}, nil
					case http.StatusTooManyRequests:
						var er struct {
							Reason string `json:"reason"`
						}
						_ = json.NewDecoder(resp.Body).Decode(&er)
						if er.Reason == "rate" {
							return 'R', false, answer{}, nil
						}
						return 'S', false, answer{}, nil
					default:
						return 'E', false, answer{}, nil
					}
				}
			}
			sh := &shards[w]
			sh.answers = make(map[uint64]answer)
			for i := w; i < len(work); i += conns {
				if rate > 0 {
					// Open loop: request i is due at i/rate seconds.
					due := start.Add(time.Duration(float64(i) / rate * float64(time.Second)))
					if d := time.Until(due); d > 0 {
						time.Sleep(d)
					}
				}
				t0 := time.Now()
				status, cacheHit, ans, err := send(work[i])
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("query %d: %w", i, err)
					}
					errMu.Unlock()
					return
				}
				switch status {
				case 'H':
					sh.ok++
					sh.lats = append(sh.lats, time.Since(t0))
					if cacheHit {
						sh.hits++
					}
					if ans.Found {
						sh.foundN++
					}
					if prev, seen := sh.answers[work[i]]; seen && prev != ans {
						errMu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("object %#x answered %+v then %+v — purity violation", work[i], prev, ans)
						}
						errMu.Unlock()
						return
					}
					sh.answers[work[i]] = ans
				case 'S':
					sh.shed++
				case 'R':
					sh.limited++
				default:
					sh.errorsN++
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	res := &result{wall: time.Since(start), answers: make(map[uint64]answer)}
	for i := range shards {
		sh := &shards[i]
		res.latencies = append(res.latencies, sh.lats...)
		res.ok += sh.ok
		res.shed += sh.shed
		res.limited += sh.limited
		res.errors += sh.errorsN
		res.hits += sh.hits
		res.found += sh.foundN
		for obj, ans := range sh.answers {
			if prev, seen := res.answers[obj]; seen && prev != ans {
				return nil, fmt.Errorf("object %#x answered %+v by one worker, %+v by another — purity violation", obj, prev, ans)
			}
			res.answers[obj] = ans
		}
	}
	sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })
	return res, nil
}

// parseTCPReply classifies one line-protocol response and, for H,
// extracts the full deterministic answer.
func parseTCPReply(line string) (status byte, cacheHit bool, ans answer, err error) {
	fields := strings.Fields(strings.TrimRight(line, "\n"))
	if len(fields) == 0 {
		return 0, false, answer{}, fmt.Errorf("empty reply")
	}
	switch fields[0] {
	case "H":
		if len(fields) != 6 {
			return 0, false, answer{}, fmt.Errorf("bad H reply %q", line)
		}
		ans.Found = fields[1] == "1"
		for _, f := range []struct {
			dst *int
			s   string
		}{{&ans.Hop, fields[2]}, {&ans.Messages, fields[3]}, {&ans.Visited, fields[4]}} {
			v, err := strconv.Atoi(f.s)
			if err != nil {
				return 0, false, answer{}, fmt.Errorf("bad H reply %q: %v", line, err)
			}
			*f.dst = v
		}
		return 'H', fields[5] == "1", ans, nil
	case "S":
		return 'S', false, answer{}, nil
	case "R":
		return 'R', false, answer{}, nil
	case "E":
		return 'E', false, answer{}, nil
	}
	return 0, false, answer{}, fmt.Errorf("unknown reply %q", line)
}

// answersDoc is the -verify-out / -verify-against file: object id
// (decimal string key; JSON objects cannot key on numbers) -> answer.
type answersDoc struct {
	Answers map[string]answer `json:"answers"`
}

func writeAnswers(path string, answers map[uint64]answer) error {
	doc := answersDoc{Answers: make(map[string]answer, len(answers))}
	for obj, ans := range answers {
		doc.Answers[strconv.FormatUint(obj, 10)] = ans
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// verifyAgainst compares this run's accepted answers with a recorded
// file on their common objects. Any differing field is a purity-
// contract violation (the two servers computed different results for
// the same key) and fails the run; disjoint objects are fine — shed
// requests and different Zipf tails shrink the intersection, they do
// not fake agreement.
func verifyAgainst(path string, got map[uint64]answer) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var doc answersDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("%s: %v", path, err)
	}
	verified := 0
	for objStr, want := range doc.Answers {
		obj, err := strconv.ParseUint(objStr, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("%s: bad object key %q", path, objStr)
		}
		ans, ok := got[obj]
		if !ok {
			continue
		}
		if ans != want {
			return 0, fmt.Errorf("object %s: got %+v, recorded %+v", objStr, ans, want)
		}
		verified++
	}
	if verified == 0 {
		return 0, fmt.Errorf("no overlapping objects with %s — nothing verified", path)
	}
	return verified, nil
}
