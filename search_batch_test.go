package makalu

import "testing"

// The public batch wrappers ride on the internal BatchRunner, whose
// golden tests pin parallel == sequential per mechanism. Here we pin
// the same property through the public surface, plus basic sanity of
// the returned stats.

func TestPublicBatchWorkerInvariance(t *testing.T) {
	ov := newSmall(t, 300, 11)
	c, err := ov.PlaceContent(10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	seq := BatchOptions{Queries: 120, Workers: 1, Seed: 21}
	par := BatchOptions{Queries: 120, Workers: 8, Seed: 21}

	if a, b := ov.FloodBatch(c, 4, seq), ov.FloodBatch(c, 4, par); a != b {
		t.Fatalf("FloodBatch diverges across workers: %+v vs %+v", a, b)
	}
	if a, b := ov.RandomWalkBatch(c, 8, 128, seq), ov.RandomWalkBatch(c, 8, 128, par); a != b {
		t.Fatalf("RandomWalkBatch diverges across workers: %+v vs %+v", a, b)
	}
	if a, b := ov.ExpandingRingBatch(c, 5, seq), ov.ExpandingRingBatch(c, 5, par); a != b {
		t.Fatalf("ExpandingRingBatch diverges across workers: %+v vs %+v", a, b)
	}

	ix, err := ov.BuildIdentifierIndex(c)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := ix.LookupBatch(25, seq), ix.LookupBatch(25, par); a != b {
		t.Fatalf("LookupBatch diverges across workers: %+v vs %+v", a, b)
	}
}

func TestPublicBatchStats(t *testing.T) {
	ov := newSmall(t, 300, 12)
	c, err := ov.PlaceContent(10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	st := ov.FloodBatch(c, 4, BatchOptions{Queries: 100, Seed: 3})
	if st.Queries != 100 {
		t.Fatalf("want 100 queries, got %d", st.Queries)
	}
	// 5% replication and TTL 4 on a 300-node overlay resolves nearly
	// everything; anything below 90% means the batch is broken, not
	// unlucky.
	if st.SuccessRate < 0.9 {
		t.Fatalf("implausible success rate %v", st.SuccessRate)
	}
	if st.MeanMessages <= 0 || st.MeanVisited <= 0 {
		t.Fatalf("empty cost stats: %+v", st)
	}
}
