package makalu

import "testing"

func TestProfileTreeLikeOverlay(t *testing.T) {
	ov := newSmall(t, 600, 18)
	p := ov.Profile(100, 3)
	if p.Clustering > 0.02 {
		t.Fatalf("clustering %v not tree-like", p.Clustering)
	}
	if p.Assortativity < -0.3 || p.Assortativity > 0.3 {
		t.Fatalf("assortativity %v far from neutral", p.Assortativity)
	}
	if p.Expansion[0] != 1 {
		t.Fatalf("hop-0 population %v, want 1", p.Expansion[0])
	}
	if p.Expansion[2] < 4*p.Expansion[1] {
		t.Fatalf("frontier not expanding: %v", p.Expansion)
	}
}

func TestProfileDegenerateInputs(t *testing.T) {
	ov := newSmall(t, 50, 19)
	p := ov.Profile(0, 2)
	if p.Expansion[0] != 0 {
		t.Fatal("zero sources should give empty expansion")
	}
	p = ov.Profile(1000, 2) // more sources than nodes clamps
	if p.Expansion[0] != 1 {
		t.Fatalf("clamped sampling broken: %v", p.Expansion)
	}
}

func TestGossipFloodAPI(t *testing.T) {
	ov := newSmall(t, 500, 20)
	c, err := ov.PlaceContent(10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	obj := c.Objects()[0]
	flood := ov.Flood(0, 4, c.Matcher(obj))
	gossip := ov.GossipFlood(0, 4, 2, 0.5, c.Matcher(obj), 99)
	if !flood.Found {
		t.Fatal("flood failed")
	}
	if gossip.Messages >= flood.Messages {
		t.Fatalf("gossip (%d msgs) should cost less than flooding (%d)", gossip.Messages, flood.Messages)
	}
	// Dead source returns the empty result.
	ov.Fail(0)
	if r := ov.GossipFlood(0, 4, 2, 0.5, c.Matcher(obj), 99); r.Found || r.Messages != 0 {
		t.Fatalf("dead source gossip: %+v", r)
	}
}

func TestRunChurnAPI(t *testing.T) {
	ov := newSmall(t, 300, 21)
	rep, err := ov.RunChurn(100, 40, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Departures == 0 {
		t.Fatal("no churn")
	}
	if len(rep.Timeline) < 5 {
		t.Fatalf("timeline too short: %d", len(rep.Timeline))
	}
	for _, s := range rep.Timeline {
		if s.GiantFraction < 0.9 {
			t.Fatalf("overlay fragmented under churn at t=%.1f", s.Time)
		}
	}
	if _, err := ov.RunChurn(-1, 1, 1, 7); err == nil {
		t.Fatal("invalid churn config should fail")
	}
}

func TestPerEdgeIdentifierIndexAPI(t *testing.T) {
	ov := newSmall(t, 400, 22)
	c, err := ov.PlaceContent(10, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := ov.BuildIdentifierIndex(c)
	if err != nil {
		t.Fatal(err)
	}
	perEdge, err := ov.BuildPerEdgeIdentifierIndex(c)
	if err != nil {
		t.Fatal(err)
	}
	if perEdge.MemoryBytes() <= shared.MemoryBytes() {
		t.Fatal("per-edge index should use more memory than the shared one")
	}
	found := 0
	for q := 0; q < 40; q++ {
		obj := c.Objects()[q%10]
		if perEdge.Lookup(q*11%400, obj, 25).Found {
			found++
		}
	}
	if found < 34 {
		t.Fatalf("per-edge lookups resolved only %d/40", found)
	}
	if _, err := ov.BuildPerEdgeIdentifierIndex(nil); err == nil {
		t.Fatal("nil content should fail")
	}
}
