package makalu

import (
	"fmt"
	"math/rand"

	"makalu/internal/search"
	"makalu/internal/sim"
)

// StructureProfile extends Stats with the locality coefficients that
// explain flooding efficiency: a Makalu overlay should be locally
// tree-like (clustering ≈ 0) with no degree-degree correlation.
type StructureProfile struct {
	Clustering    float64   // global clustering coefficient (transitivity)
	Assortativity float64   // Newman degree correlation
	Expansion     []float64 // mean nodes at exactly hop h from sampled sources
}

// Profile measures the structural coefficients over the alive
// subgraph, sampling `sources` nodes for the expansion curve up to
// maxHop hops.
func (ov *Overlay) Profile(sources, maxHop int) StructureProfile {
	sub, _ := ov.core.FreezeAlive()
	p := StructureProfile{
		Clustering:    sub.GlobalClusteringCoefficient(),
		Assortativity: sub.DegreeAssortativity(),
		Expansion:     make([]float64, maxHop+1),
	}
	if sub.N() == 0 || sources <= 0 {
		return p
	}
	if sources > sub.N() {
		sources = sub.N()
	}
	rng := rand.New(rand.NewSource(ov.cfg.Seed + 31))
	for s := 0; s < sources; s++ {
		src := rng.Intn(sub.N())
		for h, c := range sub.NeighborhoodSizes(src, maxHop) {
			p.Expansion[h] += float64(c)
		}
	}
	for h := range p.Expansion {
		p.Expansion[h] /= float64(sources)
	}
	return p
}

// GossipFlood runs the hybrid flood-then-gossip search (§4.4): full
// flooding for boundaryHops hops, then epidemic forwarding with the
// given probability. It trades a little coverage for a large cut in
// duplicate messages once the flood passes the convergence boundary.
func (ov *Overlay) GossipFlood(src, ttl, boundaryHops int, probability float64, match func(node int) bool, seed int64) SearchResult {
	if !ov.core.Alive(src) {
		return SearchResult{FirstMatchHop: -1}
	}
	gf := search.NewGossipFlooder(ov.graphSnapshot())
	cfg := search.GossipConfig{BoundaryHops: boundaryHops, Probability: probability}
	rng := rand.New(rand.NewSource(seed))
	return fromInternal(gf.Flood(src, ttl, cfg, search.Matcher(match), rng))
}

// ChurnReport summarizes a churn simulation over the overlay.
type ChurnReport struct {
	Departures int
	Rejoins    int
	// Timeline samples overlay health over simulated time.
	Timeline []ChurnSample
}

// ChurnSample is one timeline entry.
type ChurnSample struct {
	Time          float64
	Live          int
	Components    int
	GiantFraction float64
	MeanDegree    float64
}

// RunChurn subjects the overlay to exponential session/downtime churn
// for `duration` simulated time units (mean session meanSession, mean
// downtime meanDowntime) with periodic management, mutating the
// overlay in place and returning the health timeline.
func (ov *Overlay) RunChurn(duration, meanSession, meanDowntime float64, seed int64) (*ChurnReport, error) {
	ov.invalidate()
	cfg := sim.ChurnConfig{
		Duration:         duration,
		MeanSession:      meanSession,
		MeanDowntime:     meanDowntime,
		ManageInterval:   duration / 20,
		SnapshotInterval: duration / 10,
		Seed:             seed,
	}
	res, err := sim.RunChurn(ov.core, cfg)
	if err != nil {
		return nil, err
	}
	rep := &ChurnReport{Departures: res.Departures, Rejoins: res.Rejoins}
	for _, s := range res.Timeline {
		rep.Timeline = append(rep.Timeline, ChurnSample{
			Time:          s.Time,
			Live:          s.Live,
			Components:    s.Components,
			GiantFraction: s.GiantFraction,
			MeanDegree:    s.MeanDegree,
		})
	}
	return rep, nil
}

// BuildPerEdgeIdentifierIndex builds the exact Rhea–Kubiatowicz
// per-edge filter layout (back-edge exclusion) instead of the shared
// published hierarchies. Memory is O(edges) filter sets — use for
// moderate overlay sizes; see DESIGN.md.
func (ov *Overlay) BuildPerEdgeIdentifierIndex(c *Content) (*PerEdgeIdentifierIndex, error) {
	if c == nil {
		return nil, fmt.Errorf("makalu: nil content")
	}
	net, err := search.BuildPerEdgeABFNetwork(ov.graphSnapshot(), c.store, search.DefaultABFConfig())
	if err != nil {
		return nil, err
	}
	return &PerEdgeIdentifierIndex{
		net:    net,
		router: search.NewPerEdgeABFRouter(net),
		rng:    rand.New(rand.NewSource(ov.cfg.Seed + 29)),
	}, nil
}

// PerEdgeIdentifierIndex routes identifier lookups over per-edge
// attenuated Bloom filters.
type PerEdgeIdentifierIndex struct {
	net    *search.PerEdgeABFNetwork
	router *search.PerEdgeABFRouter
	rng    *rand.Rand
}

// Lookup routes a query for obj from src within a ttl hop budget.
func (ix *PerEdgeIdentifierIndex) Lookup(src int, obj uint64, ttl int) SearchResult {
	return fromInternal(ix.router.Lookup(src, obj, ttl, ix.rng))
}

// MemoryBytes reports the total filter state across all edges.
func (ix *PerEdgeIdentifierIndex) MemoryBytes() int64 { return ix.net.MemoryBytes() }
