module makalu

go 1.22
