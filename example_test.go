package makalu_test

import (
	"fmt"

	"makalu"
)

// Example builds a small overlay and runs a flooding search — the
// quickstart workflow.
func Example() {
	ov, err := makalu.New(makalu.Config{Nodes: 500, Seed: 1})
	if err != nil {
		panic(err)
	}
	content, err := ov.PlaceContent(10, 0.05) // 10 objects, 5% replication
	if err != nil {
		panic(err)
	}
	obj := content.Objects()[0]
	res := ov.Flood(0, 4, content.Matcher(obj))
	fmt.Println("found:", res.Found)
	// Output:
	// found: true
}

// ExampleOverlay_FailTopDegree demonstrates the paper's fault-
// tolerance claim: the overlay survives losing its best-connected 30%.
func ExampleOverlay_FailTopDegree() {
	ov, err := makalu.New(makalu.Config{Nodes: 500, Seed: 2})
	if err != nil {
		panic(err)
	}
	ov.FailTopDegree(150)
	st := ov.Stats(100)
	fmt.Println("live:", st.Live)
	fmt.Println("one component:", st.Components == 1 || st.GiantFraction > 0.97)
	// Output:
	// live: 350
	// one component: true
}

// ExampleOverlay_BuildIdentifierIndex shows exact-identifier search
// over attenuated Bloom filters (§4.6).
func ExampleOverlay_BuildIdentifierIndex() {
	ov, err := makalu.New(makalu.Config{Nodes: 500, Seed: 3})
	if err != nil {
		panic(err)
	}
	content, err := ov.PlaceContent(10, 0.02)
	if err != nil {
		panic(err)
	}
	index, err := ov.BuildIdentifierIndex(content)
	if err != nil {
		panic(err)
	}
	res := index.Lookup(0, content.Objects()[0], 25)
	fmt.Println("found:", res.Found, "— cheap:", res.Messages < 25)
	// Output:
	// found: true — cheap: true
}

// ExampleOverlay_RateNeighbors exposes the paper's peer rating
// function: every neighbor's score decomposes into a connectivity and
// a proximity term.
func ExampleOverlay_RateNeighbors() {
	ov, err := makalu.New(makalu.Config{Nodes: 300, Seed: 4})
	if err != nil {
		panic(err)
	}
	ratings := ov.RateNeighbors(7)
	consistent := true
	for _, r := range ratings {
		if r.Score != r.Connectivity+r.Proximity {
			consistent = false
		}
	}
	fmt.Println("neighbors rated:", len(ratings) == ov.Degree(7))
	fmt.Println("decomposition holds:", consistent)
	// Output:
	// neighbors rated: true
	// decomposition holds: true
}
