// Filesharing: drive a Makalu overlay with a synthetic Gnutella-style
// query trace (Poisson arrivals at the measured 2006 rate, Zipf object
// popularity) and compare the resulting traffic against the measured
// Gnutella ultrapeer figures — the workload behind the paper's
// Table 2. Then go beyond queries: download an actual object in
// chunks from live peer processes, surviving the death of a replica
// that is actively serving it.
//
//	go run ./examples/filesharing
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"sync"

	"makalu"
	"makalu/internal/content"
	"makalu/internal/trace"
	"makalu/peer"
)

func main() {
	const n = 5000
	ov, err := makalu.New(makalu.Config{Nodes: n, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Worst-case content population: every object exists on exactly
	// one node (replication 0 floors to a single copy).
	catalogSize := 200
	content, err := ov.PlaceContent(catalogSize, 0)
	if err != nil {
		log.Fatal(err)
	}

	// A two-minute synthetic trace at the 2006 incoming query rate,
	// with Zipf-skewed popularity as real file-sharing traces show.
	profile := trace.Gnutella2006()
	events, err := trace.GenerateStream(trace.StreamConfig{
		Duration: 120,
		Rate:     profile.QueriesPerSecond,
		Objects:  catalogSize,
		ZipfExp:  1.3,
		Seed:     11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaying %d queries (%.2f q/s) over a %d-node Makalu overlay\n",
		len(events), profile.QueriesPerSecond, n)

	rng := rand.New(rand.NewSource(13))
	const ttl = 5
	found, messages := 0, 0
	for _, ev := range events {
		obj := content.Objects()[ev.Object]
		res := ov.Flood(rng.Intn(n), ttl, content.Matcher(obj))
		if res.Found {
			found++
		}
		messages += res.Messages
	}
	successRate := float64(found) / float64(len(events))
	fmt.Printf("flooding TTL %d, 1 replica/object: success %.1f%%, %.0f msgs/query network-wide\n",
		ttl, 100*successRate, float64(messages)/float64(len(events)))

	// Table 2 perspective: per-node outgoing load under the measured
	// incoming query rate. A Makalu node forwards each query to
	// (degree - 1) neighbors; the measured 2006 ultrapeer forwarded
	// to 38.4.
	rows := trace.Table2(profile, ov.MeanDegree()-1, successRate, ov.MeanDegree())
	fmt.Printf("\n%-26s %14s %10s\n", "", rows[0].System, rows[1].System)
	fmt.Printf("%-26s %14.2f %10.2f\n", "outgoing msgs/query", rows[0].MsgsPerQuery, rows[1].MsgsPerQuery)
	fmt.Printf("%-26s %14.2f %10.2f\n", "outgoing msgs/second", rows[0].MsgsPerSecond, rows[1].MsgsPerSecond)
	fmt.Printf("%-26s %13.1fk %9.2fk\n", "outgoing bandwidth (bps)", rows[0].OutgoingKbps, rows[1].OutgoingKbps)
	fmt.Printf("%-26s %13.1f%% %9.1f%%\n", "query success rate", 100*rows[0].SuccessRate, 100*rows[1].SuccessRate)
	fmt.Printf("%-26s %14.1f %10.2f\n", "neighbors per node", rows[0].NeighborsRequired, rows[1].NeighborsRequired)

	liveDownload()
}

// liveDownload is the chunked-transfer demo on real TCP peers: a
// 512 KiB object in 64 KiB chunks on three replicas, one of which is
// crash-killed (no FIN) after it serves a chunk — the download
// finishes from the survivors via the timeout/re-request path.
func liveDownload() {
	const (
		obj   = uint64(0xf11e)
		size  = int64(512 << 10)
		chunk = 64 << 10
	)
	man, err := content.BuildManifest(obj, size, chunk)
	if err != nil {
		log.Fatal(err)
	}
	payload := content.ObjectPayload(obj, size, chunk)

	client, err := peer.Start("127.0.0.1:0", peer.DefaultNodeConfig(8, 1))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	var replicas []*peer.Node
	for i := 0; i < 3; i++ {
		r, err := peer.Start("127.0.0.1:0", peer.DefaultNodeConfig(8, int64(i+2)))
		if err != nil {
			log.Fatal(err)
		}
		defer r.Close()
		r.AddBlob(obj, payload)
		if err := client.Connect(r.Addr()); err != nil {
			log.Fatal(err)
		}
		replicas = append(replicas, r)
	}

	victim := replicas[0]
	sources := []string{replicas[0].Addr(), replicas[1].Addr(), replicas[2].Addr()}
	fmt.Printf("\nstreaming %d KiB (%d chunks) from %d replicas; killing %s mid-transfer\n",
		size>>10, man.NumChunks(), len(replicas), victim.Addr())

	var once sync.Once
	got, stats, err := client.DownloadBlob(man, sources, peer.DownloadConfig{
		OnChunk: func(c int, from string) {
			if from == victim.Addr() {
				once.Do(victim.Kill) // crash: no FIN, sockets left dangling
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		log.Fatal("downloaded payload differs from original")
	}
	fmt.Printf("download completed: %d bytes in %v (ttfb %v), %d re-requests, %d sources dropped\n",
		stats.Bytes, stats.Elapsed.Round(1e6), stats.TTFB, stats.ReRequests, stats.SourcesDropped)
}
