// Filesharing: drive a Makalu overlay with a synthetic Gnutella-style
// query trace (Poisson arrivals at the measured 2006 rate, Zipf object
// popularity) and compare the resulting traffic against the measured
// Gnutella ultrapeer figures — the workload behind the paper's
// Table 2.
//
//	go run ./examples/filesharing
package main

import (
	"fmt"
	"log"
	"math/rand"

	"makalu"
	"makalu/internal/trace"
)

func main() {
	const n = 5000
	ov, err := makalu.New(makalu.Config{Nodes: n, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Worst-case content population: every object exists on exactly
	// one node (replication 0 floors to a single copy).
	catalogSize := 200
	content, err := ov.PlaceContent(catalogSize, 0)
	if err != nil {
		log.Fatal(err)
	}

	// A two-minute synthetic trace at the 2006 incoming query rate,
	// with Zipf-skewed popularity as real file-sharing traces show.
	profile := trace.Gnutella2006()
	events, err := trace.GenerateStream(trace.StreamConfig{
		Duration: 120,
		Rate:     profile.QueriesPerSecond,
		Objects:  catalogSize,
		ZipfExp:  1.3,
		Seed:     11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaying %d queries (%.2f q/s) over a %d-node Makalu overlay\n",
		len(events), profile.QueriesPerSecond, n)

	rng := rand.New(rand.NewSource(13))
	const ttl = 5
	found, messages := 0, 0
	for _, ev := range events {
		obj := content.Objects()[ev.Object]
		res := ov.Flood(rng.Intn(n), ttl, content.Matcher(obj))
		if res.Found {
			found++
		}
		messages += res.Messages
	}
	successRate := float64(found) / float64(len(events))
	fmt.Printf("flooding TTL %d, 1 replica/object: success %.1f%%, %.0f msgs/query network-wide\n",
		ttl, 100*successRate, float64(messages)/float64(len(events)))

	// Table 2 perspective: per-node outgoing load under the measured
	// incoming query rate. A Makalu node forwards each query to
	// (degree - 1) neighbors; the measured 2006 ultrapeer forwarded
	// to 38.4.
	rows := trace.Table2(profile, ov.MeanDegree()-1, successRate, ov.MeanDegree())
	fmt.Printf("\n%-26s %14s %10s\n", "", rows[0].System, rows[1].System)
	fmt.Printf("%-26s %14.2f %10.2f\n", "outgoing msgs/query", rows[0].MsgsPerQuery, rows[1].MsgsPerQuery)
	fmt.Printf("%-26s %14.2f %10.2f\n", "outgoing msgs/second", rows[0].MsgsPerSecond, rows[1].MsgsPerSecond)
	fmt.Printf("%-26s %13.1fk %9.2fk\n", "outgoing bandwidth (bps)", rows[0].OutgoingKbps, rows[1].OutgoingKbps)
	fmt.Printf("%-26s %13.1f%% %9.1f%%\n", "query success rate", 100*rows[0].SuccessRate, 100*rows[1].SuccessRate)
	fmt.Printf("%-26s %14.1f %10.2f\n", "neighbors per node", rows[0].NeighborsRequired, rows[1].NeighborsRequired)
}
