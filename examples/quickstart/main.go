// Quickstart: build a Makalu overlay, place some replicated content,
// and resolve a wildcard query by TTL-controlled flooding.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"makalu"
)

func main() {
	// A 2,000-node overlay on the default Euclidean latency model.
	// Nodes get random connection capacities in [8, 14], join through
	// random-walk peer discovery, and settle via the management loop.
	ov, err := makalu.New(makalu.Config{Nodes: 2000, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	st := ov.Stats(200)
	fmt.Printf("overlay: %d nodes, mean degree %.1f, diameter %d, mean path %.2f hops\n",
		st.Nodes, st.MeanDegree, st.Diameter, st.MeanHops)

	// 100 objects, each replicated on 1% of the nodes.
	content, err := ov.PlaceContent(100, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	obj := content.Objects()[7]
	fmt.Printf("looking for %q (%d replicas)\n", content.Name(7), len(content.Replicas(obj)))

	// Flood with TTL 4 — the paper's operating point: on Makalu's
	// expander-like topology this reaches thousands of nodes in four
	// hops with very few duplicate deliveries.
	res := ov.Flood(0, 4, content.Matcher(obj))
	fmt.Printf("flood: found=%v in %d hops, %d messages (%d duplicates), %d nodes visited\n",
		res.Found, res.FirstMatchHop, res.Messages, res.Duplicates, res.NodesVisited)

	// The same object via exact-identifier routing over attenuated
	// Bloom filters: a handful of point-to-point messages instead of
	// a flood.
	index, err := ov.BuildIdentifierIndex(content)
	if err != nil {
		log.Fatal(err)
	}
	lr := index.Lookup(0, obj, 25)
	fmt.Printf("identifier lookup: found=%v with %d messages (filters use %d bytes network-wide)\n",
		lr.Found, lr.Messages, index.MemoryBytes())
}
