// Livenet: run a real Makalu network — 20 live nodes speaking the
// wire protocol over loopback TCP — and resolve queries on it. This
// is the deployable counterpart of the simulations: the same rating
// function and management loop, but over sockets, with measured RTTs
// as the proximity signal.
//
//	go run ./examples/livenet
package main

import (
	"fmt"
	"log"
	"time"

	"makalu/peer"
)

func main() {
	const (
		nodes    = 20
		capacity = 5
	)
	fmt.Printf("starting %d live nodes (capacity %d) on loopback...\n", nodes, capacity)
	net := make([]*peer.Node, nodes)
	for i := range net {
		nd, err := peer.Start("127.0.0.1:0", peer.DefaultNodeConfig(capacity, int64(i+1)))
		if err != nil {
			log.Fatal(err)
		}
		defer nd.Close()
		net[i] = nd
	}

	// Everyone bootstraps off node 0, then the management loops take
	// over: neighbor-list exchange, RTT pings, rating-based pruning.
	seed := net[0].Addr()
	for i := 1; i < nodes; i++ {
		if err := net[i].Bootstrap(seed, 2*time.Second); err != nil {
			log.Fatalf("node %d bootstrap: %v", i, err)
		}
	}
	time.Sleep(time.Second) // let views and pings settle

	degSum := 0
	for _, nd := range net {
		degSum += nd.Degree()
	}
	fmt.Printf("network settled: mean degree %.1f\n", float64(degSum)/nodes)

	// Store an object on the last node and flood a query from node 1.
	const object = uint64(0x5eed)
	net[nodes-1].AddObject(object)
	fmt.Printf("node %d stores object %#x; querying from node 1 with TTL 6...\n", nodes-1, object)

	start := time.Now()
	id := net[1].Query(object, 6)
	select {
	case hit := <-net[1].Hits():
		fmt.Printf("hit for query %#x: object %#x held by %s (%.1fms)\n",
			id, hit.Object, hit.Holder, float64(time.Since(start).Microseconds())/1000)
	case <-time.After(5 * time.Second):
		log.Fatal("no hit within 5s")
	}

	// Per-node load: duplicate suppression means each node processed
	// the query at most once.
	processed := 0
	for _, nd := range net {
		processed += int(nd.QueriesForwarded())
	}
	fmt.Printf("query processed by %d/%d nodes exactly once each\n", processed, nodes)

	// Kill the best-connected node and show the network self-healing.
	best, bestDeg := 0, -1
	for i, nd := range net {
		if d := nd.Degree(); d > bestDeg {
			best, bestDeg = i, d
		}
	}
	if best == 1 || best == nodes-1 {
		best = 2 // keep the querier and the holder alive for the demo
	}
	fmt.Printf("killing the best-connected node %d (degree %d)...\n", best, bestDeg)
	net[best].Close()
	time.Sleep(1500 * time.Millisecond) // host caches refill neighbors

	id = net[1].Query(object, 6)
	select {
	case hit := <-net[1].Hits():
		fmt.Printf("post-failure hit for query %#x from %s — the overlay healed\n", id, hit.Holder)
	case <-time.After(5 * time.Second):
		log.Fatal("no hit after failure: overlay did not heal")
	}
}
