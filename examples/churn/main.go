// Churn: subject a Makalu overlay to targeted failures and continuous
// node churn, watching connectivity and search quality — the paper's
// fault-tolerance story (§3.4, Figure 1) as a running system.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"
	"math/rand"

	"makalu"
	"makalu/internal/core"
	"makalu/internal/netmodel"
	"makalu/internal/sim"
)

func main() {
	const n = 2000
	ov, err := makalu.New(makalu.Config{Nodes: n, Seed: 31})
	if err != nil {
		log.Fatal(err)
	}
	content, err := ov.PlaceContent(50, 0.01)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Phase 1: targeted failure of the best-connected nodes ===")
	fmt.Printf("%8s %8s %12s %8s %10s %10s\n",
		"failed", "live", "components", "giant", "diameter", "success")
	for _, frac := range []float64{0, 0.10, 0.20, 0.30} {
		// Rebuild for each fraction so failures do not compound.
		ov2, err := makalu.New(makalu.Config{Nodes: n, Seed: 31})
		if err != nil {
			log.Fatal(err)
		}
		if frac > 0 {
			ov2.FailTopDegree(int(frac * n))
		}
		st := ov2.Stats(200)
		success := measureSearch(ov2, content, 200)
		fmt.Printf("%7.0f%% %8d %12d %7.1f%% %10d %9.1f%%\n",
			frac*100, st.Live, st.Components, 100*st.GiantFraction, st.Diameter, 100*success)
	}

	fmt.Println("\n=== Phase 2: continuous churn with rejoin ===")
	// The churn process drives the core overlay directly.
	net := netmodel.NewEuclidean(n, 1000, 33)
	overlay, err := core.Build(n, core.DefaultConfig(net, 33))
	if err != nil {
		log.Fatal(err)
	}
	cfg := sim.ChurnConfig{
		Duration:         300,
		MeanSession:      60,
		MeanDowntime:     15,
		ManageInterval:   5,
		SnapshotInterval: 30,
		Seed:             35,
		RatingSnapshots:  true, // track the §2.1 steering signal too
	}
	res, err := sim.RunChurn(overlay, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d departures, %d rejoins over %.0f time units\n",
		res.Departures, res.Rejoins, cfg.Duration)
	fmt.Printf("%8s %8s %12s %8s %10s %10s\n", "time", "live", "components", "giant", "meandeg", "rating")
	for _, s := range res.Timeline {
		// FmtRating guards the -1 "rating off" sentinel (and would
		// print "off" if RatingSnapshots were disabled above).
		fmt.Printf("%8.1f %8d %12d %7.1f%% %10.2f %10s\n",
			s.Time, s.Live, s.Components, 100*s.GiantFraction, s.MeanDegree, sim.FmtRating(s.MeanRating))
	}
}

// measureSearch floods from random live sources and returns the
// success rate. Dead sources are skipped.
func measureSearch(ov *makalu.Overlay, c *makalu.Content, queries int) float64 {
	rng := rand.New(rand.NewSource(37))
	objs := c.Objects()
	found, issued := 0, 0
	for issued < queries {
		src := rng.Intn(ov.Nodes())
		if !ov.Alive(src) {
			continue
		}
		issued++
		obj := objs[rng.Intn(len(objs))]
		if ov.Flood(src, 4, c.Matcher(obj)).Found {
			found++
		}
	}
	return float64(found) / float64(queries)
}
