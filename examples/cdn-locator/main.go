// CDN locator: exact-identifier object location over attenuated Bloom
// filters (the paper's §4.6 mechanism, Figure 4's workload) compared
// against a Chord DHT on the same node population — the "comparable
// to structured P2P systems" claim, measured.
//
//	go run ./examples/cdn-locator
package main

import (
	"fmt"
	"log"
	"math/rand"

	"makalu"
	"makalu/internal/dht"
)

func main() {
	const n = 5000
	ov, err := makalu.New(makalu.Config{Nodes: n, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}

	chord, err := dht.New(n, 23)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s | %-30s | %-18s\n", "replication", "Makalu + attenuated Bloom", "Chord DHT")
	fmt.Printf("%-12s | %9s %9s %10s | %9s %8s\n",
		"", "success", "mean-msg", "p95-msg", "success", "hops")

	rng := rand.New(rand.NewSource(25))
	for _, repl := range []float64{0.001, 0.005, 0.01} {
		content, err := ov.PlaceContent(50, repl)
		if err != nil {
			log.Fatal(err)
		}
		index, err := ov.BuildIdentifierIndex(content)
		if err != nil {
			log.Fatal(err)
		}
		const queries = 500
		const ttl = 25
		found := 0
		var msgs []int
		chordHops := 0
		for q := 0; q < queries; q++ {
			obj := content.Objects()[rng.Intn(50)]
			src := rng.Intn(n)
			res := index.Lookup(src, obj, ttl)
			if res.Found {
				found++
				msgs = append(msgs, res.Messages)
			}
			_, hops := chord.Lookup(src, obj)
			chordHops += hops
		}
		mean, p95 := summarize(msgs)
		fmt.Printf("%11.1f%% | %8.1f%% %9.2f %10d | %9s %8.2f\n",
			repl*100, 100*float64(found)/queries, mean, p95,
			"100.0%", float64(chordHops)/queries)
	}
	fmt.Println("\nNote: Chord lookups always succeed by construction; the ABF search")
	fmt.Println("trades a small failure rate at very low replication for requiring no")
	fmt.Println("global structure — overlay repair under churn stays purely local.")
}

func summarize(xs []int) (mean float64, p95 int) {
	if len(xs) == 0 {
		return 0, 0
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	// Insertion sort is fine for a few hundred samples.
	sorted := append([]int(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return float64(sum) / float64(len(xs)), sorted[len(sorted)*95/100]
}
