package makalu

import (
	"math"
	"testing"
)

func newSmall(t *testing.T, n int, seed int64) *Overlay {
	t.Helper()
	ov, err := New(Config{Nodes: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ov
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{},                     // no nodes
		{Nodes: 10, Alpha: -1}, // negative weight
		{Nodes: 10, MinCapacity: 5, MaxCapacity: 2}, // bad range
		{Nodes: 10, Headroom: -1},                   // negative headroom
		{Nodes: 10, Model: "carrier-pigeon"},        // unknown model
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d (%+v) should fail", i, cfg)
		}
	}
}

func TestNewDefaultsAndStats(t *testing.T) {
	ov := newSmall(t, 400, 1)
	st := ov.Stats(0)
	if st.Nodes != 400 || st.Live != 400 {
		t.Fatalf("counts wrong: %+v", st)
	}
	if st.Components != 1 || st.GiantFraction != 1 {
		t.Fatalf("overlay should be connected: %+v", st)
	}
	if st.MeanDegree < 8 || st.MeanDegree > 14 {
		t.Fatalf("mean degree %.1f outside the configured band", st.MeanDegree)
	}
	if st.Diameter > 6 {
		t.Fatalf("diameter %d too large", st.Diameter)
	}
	if st.MeanPathCost <= 0 {
		t.Fatal("weighted path cost missing")
	}
}

func TestAllNetworkModels(t *testing.T) {
	for _, m := range []NetworkModel{Euclidean, TransitStub, PlanetLab} {
		ov, err := New(Config{Nodes: 250, Seed: 2, Model: m})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		st := ov.Stats(50)
		if st.Components != 1 {
			t.Fatalf("%s: %d components", m, st.Components)
		}
	}
}

func TestDegreeAndNeighborsAccessors(t *testing.T) {
	ov := newSmall(t, 200, 3)
	for u := 0; u < 200; u += 37 {
		nb := ov.Neighbors(u)
		if len(nb) != ov.Degree(u) {
			t.Fatalf("node %d: %d neighbors vs degree %d", u, len(nb), ov.Degree(u))
		}
		for _, v := range nb {
			if v < 0 || v >= 200 || v == u {
				t.Fatalf("bad neighbor %d of %d", v, u)
			}
		}
	}
	if ov.MeanDegree() < 5 {
		t.Fatal("mean degree too low")
	}
}

func TestRateNeighborsExposed(t *testing.T) {
	ov := newSmall(t, 300, 4)
	ratings := ov.RateNeighbors(10)
	if len(ratings) != ov.Degree(10) {
		t.Fatalf("rated %d of %d neighbors", len(ratings), ov.Degree(10))
	}
	for _, r := range ratings {
		if r.Score != r.Connectivity+r.Proximity {
			t.Fatalf("score decomposition broken: %+v", r)
		}
		if r.Boundary < r.Unique {
			t.Fatalf("unique set cannot exceed boundary: %+v", r)
		}
	}
}

func TestFailureAndHealWorkflow(t *testing.T) {
	ov := newSmall(t, 500, 5)
	victims := ov.FailTopDegree(150)
	if len(victims) != 150 || ov.Live() != 350 {
		t.Fatalf("failure accounting wrong: %d victims, %d live", len(victims), ov.Live())
	}
	st := ov.Stats(100)
	if st.GiantFraction < 0.95 {
		t.Fatalf("post-failure giant fraction %.2f — Makalu should survive 30%%", st.GiantFraction)
	}
	ov.Heal(2)
	st = ov.Stats(100)
	if st.Components != 1 {
		t.Fatalf("heal left %d components", st.Components)
	}
	if !ov.Revive(victims[0]) {
		t.Fatal("revive failed")
	}
	if ov.Live() != 351 || !ov.Alive(victims[0]) {
		t.Fatal("revive accounting wrong")
	}
	if ov.Revive(victims[0]) {
		t.Fatal("double revive should fail")
	}
}

func TestFailRandomAndExplicit(t *testing.T) {
	ov := newSmall(t, 200, 6)
	ov.Fail(1, 2, 3)
	if ov.Live() != 197 {
		t.Fatalf("live = %d", ov.Live())
	}
	ids := ov.FailRandom(10)
	if len(ids) != 10 || ov.Live() != 187 {
		t.Fatal("random failure accounting wrong")
	}
}

func TestAddNodeWithHeadroom(t *testing.T) {
	ov, err := New(Config{Nodes: 150, Seed: 7, Headroom: 10})
	if err != nil {
		t.Fatal(err)
	}
	id := ov.AddNode()
	if id != 150 || ov.Nodes() != 151 {
		t.Fatalf("grow failed: id=%d nodes=%d", id, ov.Nodes())
	}
	if ov.Degree(id) == 0 {
		t.Fatal("new node did not connect")
	}
}

func TestPlaceContentAndMatchers(t *testing.T) {
	ov := newSmall(t, 300, 8)
	c, err := ov.PlaceContent(20, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	objs := c.Objects()
	if len(objs) != 20 {
		t.Fatalf("placed %d objects", len(objs))
	}
	obj := objs[0]
	reps := c.Replicas(obj)
	if len(reps) != 6 { // 2% of 300
		t.Fatalf("replica count %d, want 6", len(reps))
	}
	m := c.Matcher(obj)
	for _, r := range reps {
		if !m(r) {
			t.Fatalf("matcher misses replica %d", r)
		}
	}
	if c.Name(0) == "" {
		t.Fatal("object names missing")
	}
}

func TestFloodEndToEnd(t *testing.T) {
	ov := newSmall(t, 500, 9)
	c, err := ov.PlaceContent(10, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	obj := c.Objects()[0]
	res := ov.Flood(0, 4, c.Matcher(obj))
	if !res.Found {
		t.Fatalf("flood failed: %+v", res)
	}
	if res.Messages <= 0 || res.NodesVisited <= 1 {
		t.Fatalf("accounting wrong: %+v", res)
	}
	// Flooding from a dead node returns an empty result.
	ov.Fail(0)
	res = ov.Flood(0, 4, c.Matcher(obj))
	if res.Found || res.Messages != 0 {
		t.Fatalf("dead source should not flood: %+v", res)
	}
}

func TestWildcardFloodMatchesMoreNodes(t *testing.T) {
	ov := newSmall(t, 400, 10)
	c, err := ov.PlaceContent(200, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	exact := c.Matcher(c.Objects()[3])
	wild := c.WildcardMatcher(3, 1, 42)
	countMatches := func(m func(int) bool) int {
		n := 0
		for u := 0; u < 400; u++ {
			if m(u) {
				n++
			}
		}
		return n
	}
	if countMatches(wild) < countMatches(exact) {
		t.Fatal("a 1-term wildcard must match at least the exact object's nodes")
	}
}

func TestRandomWalkAndExpandingRing(t *testing.T) {
	ov := newSmall(t, 400, 11)
	c, err := ov.PlaceContent(10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	obj := c.Objects()[0]
	rw := ov.RandomWalkSearch(1, 8, 200, c.Matcher(obj), 13)
	if !rw.Found {
		t.Fatalf("random walk failed: %+v", rw)
	}
	er := ov.ExpandingRingSearch(1, 6, c.Matcher(obj), 13)
	if !er.Found {
		t.Fatalf("expanding ring failed: %+v", er)
	}
}

func TestIdentifierIndexLookup(t *testing.T) {
	ov := newSmall(t, 600, 12)
	c, err := ov.PlaceContent(15, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ov.BuildIdentifierIndex(c)
	if err != nil {
		t.Fatal(err)
	}
	if ix.MemoryBytes() <= 0 {
		t.Fatal("memory accounting broken")
	}
	found := 0
	for q := 0; q < 50; q++ {
		obj := c.Objects()[q%15]
		res := ix.Lookup(q*7%600, obj, 25)
		if res.Found {
			found++
		}
	}
	if found < 42 {
		t.Fatalf("identifier lookups resolved only %d/50", found)
	}
	if _, err := ov.BuildIdentifierIndex(nil); err == nil {
		t.Fatal("nil content should fail")
	}
}

func TestAlgebraicConnectivityAPI(t *testing.T) {
	ov := newSmall(t, 350, 14)
	l1, err := ov.AlgebraicConnectivity()
	if err != nil {
		t.Fatal(err)
	}
	if l1 < 1 {
		t.Fatalf("λ₁ = %.3f too low for a Makalu overlay", l1)
	}
}

func TestNormalizedSpectrumAPI(t *testing.T) {
	ov := newSmall(t, 200, 15)
	spec, err := ov.NormalizedSpectrum()
	if err != nil {
		t.Fatal(err)
	}
	if len(spec) != 200 {
		t.Fatalf("spectrum length %d", len(spec))
	}
	zero := 0
	for _, v := range spec {
		if math.Abs(v) < 1e-8 {
			zero++
		}
		if v < -1e-9 || v > 2+1e-9 {
			t.Fatalf("eigenvalue %v outside [0,2]", v)
		}
	}
	if zero != 1 {
		t.Fatalf("multiplicity of 0 is %d, want 1 (connected)", zero)
	}
}

func TestDeterministicBuilds(t *testing.T) {
	a := newSmall(t, 250, 16)
	b := newSmall(t, 250, 16)
	for u := 0; u < 250; u++ {
		na, nb := a.Neighbors(u), b.Neighbors(u)
		if len(na) != len(nb) {
			t.Fatalf("node %d degree differs", u)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("node %d neighbor lists differ", u)
			}
		}
	}
}
