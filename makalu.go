// Package makalu is the public API of this repository: a
// reproduction of "Improving Search Using a Fault-Tolerant Overlay in
// Unstructured P2P Systems" (Acosta & Chandra, ICPP 2007).
//
// Makalu builds unstructured P2P overlays that approximate expander
// graphs using only node-local information: each node rates its
// neighbors by the unique connectivity they contribute and by their
// proximity, accepts connections freely, and prunes the worst-rated
// neighbor whenever it exceeds its capacity. The resulting overlays
// have low diameter, near-optimal algebraic connectivity, survive
// targeted failure of their best-connected nodes, support efficient
// TTL flooding for wildcard search, and carry attenuated Bloom
// filters for DHT-grade identifier search.
//
// Quick start:
//
//	ov, err := makalu.New(makalu.Config{Nodes: 10000, Seed: 1})
//	...
//	content, err := ov.PlaceContent(100, 0.01) // 100 objects, 1% replication
//	res := ov.Flood(src, 4, content.Matcher(objectID))
//
// The internal packages expose the full machinery (topology
// generators, spectral analysis, the benchmark harness); this package
// wraps the workflows a downstream application needs.
package makalu

import (
	"fmt"
	"math/rand"

	"makalu/internal/content"
	"makalu/internal/core"
	"makalu/internal/graph"
	"makalu/internal/netmodel"
	"makalu/internal/spectral"
)

// NetworkModel selects the physical latency model an overlay is built
// over.
type NetworkModel string

const (
	// Euclidean places nodes on a random plane; latency = distance.
	Euclidean NetworkModel = "euclidean"
	// TransitStub is a GT-ITM-style hierarchical internet model.
	TransitStub NetworkModel = "transit-stub"
	// PlanetLab is a synthetic all-pairs RTT matrix with continental
	// clusters and heavy-tailed intercontinental latencies.
	PlanetLab NetworkModel = "planetlab"
)

// Config configures New. The zero value of every field has a sensible
// default; only Nodes is required.
type Config struct {
	// Nodes is the overlay size. Required.
	Nodes int
	// Seed drives all randomness; equal seeds give identical overlays.
	Seed int64
	// Alpha and Beta weight connectivity and proximity in the peer
	// rating function. Both default to 1 (the paper's setting); set
	// one to 0 to bias the overlay (they may not both be 0).
	Alpha, Beta float64
	// Model selects the latency substrate (default Euclidean).
	Model NetworkModel
	// MinCapacity and MaxCapacity bound per-node connection budgets;
	// capacities are drawn uniformly. Defaults 8 and 14 (mean ≈ 11,
	// the paper's 10–12 band).
	MinCapacity, MaxCapacity int
	// Headroom reserves latency-model slots beyond Nodes so AddNode
	// can grow the overlay later. Default 0.
	Headroom int
	// Workers bounds the worker pool for the batched read-only passes
	// (RateAll, protocol view refresh). 0 defaults to GOMAXPROCS; 1
	// forces fully sequential execution. Results are identical at any
	// setting.
	Workers int
	// JoinWave switches construction to batched join waves of this
	// size (PR 6's build path for 10⁵+ overlays); <= 1 keeps the
	// sequential join. Wave builds are deterministic at any worker
	// count but differ from the sequential build's topology.
	JoinWave int
}

// Overlay is a built Makalu overlay plus cached analysis state.
type Overlay struct {
	cfg    Config
	core   *core.Overlay
	frozen *graph.Graph // invalidated on mutation
}

// New builds a Makalu overlay: nodes join one at a time through
// random-walk peer discovery, then the management loop settles the
// topology.
func New(cfg Config) (*Overlay, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("makalu: Config.Nodes must be positive, got %d", cfg.Nodes)
	}
	if cfg.Alpha == 0 && cfg.Beta == 0 {
		cfg.Alpha, cfg.Beta = 1, 1
	}
	if cfg.Alpha < 0 || cfg.Beta < 0 {
		return nil, fmt.Errorf("makalu: rating weights must be non-negative")
	}
	if cfg.MinCapacity == 0 {
		cfg.MinCapacity = 8
	}
	if cfg.MaxCapacity == 0 {
		cfg.MaxCapacity = 14
	}
	if cfg.MinCapacity < 1 || cfg.MaxCapacity < cfg.MinCapacity {
		return nil, fmt.Errorf("makalu: capacity range [%d, %d] invalid", cfg.MinCapacity, cfg.MaxCapacity)
	}
	if cfg.Headroom < 0 {
		return nil, fmt.Errorf("makalu: negative headroom")
	}
	if cfg.Model == "" {
		cfg.Model = Euclidean
	}
	total := cfg.Nodes + cfg.Headroom
	var model netmodel.Model
	switch cfg.Model {
	case Euclidean:
		model = netmodel.NewEuclidean(total, 1000, cfg.Seed)
	case TransitStub:
		c := netmodel.DefaultTransitStub()
		c.Seed = cfg.Seed
		model = netmodel.NewTransitStub(total, c)
	case PlanetLab:
		c := netmodel.DefaultPlanetLab()
		c.Seed = cfg.Seed
		model = netmodel.NewPlanetLab(total, c)
	default:
		return nil, fmt.Errorf("makalu: unknown network model %q", cfg.Model)
	}
	coreCfg := core.DefaultConfig(model, cfg.Seed)
	coreCfg.Alpha, coreCfg.Beta = cfg.Alpha, cfg.Beta
	coreCfg.Workers = cfg.Workers
	coreCfg.JoinWave = cfg.JoinWave
	capRng := rand.New(rand.NewSource(cfg.Seed + 1))
	caps := make([]int, cfg.Nodes)
	for i := range caps {
		caps[i] = cfg.MinCapacity + capRng.Intn(cfg.MaxCapacity-cfg.MinCapacity+1)
	}
	coreCfg.Capacities = caps
	o, err := core.Build(cfg.Nodes, coreCfg)
	if err != nil {
		return nil, err
	}
	return &Overlay{cfg: cfg, core: o}, nil
}

// Nodes returns the total node count, dead nodes included.
func (ov *Overlay) Nodes() int { return ov.core.N() }

// Live returns the number of alive nodes.
func (ov *Overlay) Live() int { return ov.core.LiveCount() }

// Alive reports whether node u is alive.
func (ov *Overlay) Alive(u int) bool { return ov.core.Alive(u) }

// Degree returns node u's current connection count.
func (ov *Overlay) Degree(u int) int { return ov.core.Graph().Degree(u) }

// Neighbors returns a copy of u's current neighbor list.
func (ov *Overlay) Neighbors(u int) []int {
	nb := ov.core.Graph().Neighbors(u)
	out := make([]int, len(nb))
	for i, v := range nb {
		out[i] = int(v)
	}
	return out
}

// MeanDegree returns the mean degree over alive nodes.
func (ov *Overlay) MeanDegree() float64 { return ov.core.MeanDegree() }

// invalidate drops the cached frozen graph after mutations.
func (ov *Overlay) invalidate() { ov.frozen = nil }

// graphSnapshot returns (building if needed) the frozen CSR view.
func (ov *Overlay) graphSnapshot() *graph.Graph {
	if ov.frozen == nil {
		ov.frozen = ov.core.Freeze()
	}
	return ov.frozen
}

// NeighborRating describes how node u currently rates neighbor v
// (paper §2.1).
type NeighborRating struct {
	Neighbor     int     // the rated neighbor
	Unique       int     // nodes reachable from u only through it
	Boundary     int     // |∂Γ(u)|, the neighborhood's node boundary
	Connectivity float64 // alpha-weighted connectivity term
	Proximity    float64 // beta-weighted proximity term
	Score        float64 // total rating
}

// RateNeighbors exposes the peer rating function for node u.
func (ov *Overlay) RateNeighbors(u int) []NeighborRating {
	infos := ov.core.RateNeighbors(u, nil)
	out := make([]NeighborRating, len(infos))
	for i, in := range infos {
		out[i] = NeighborRating{
			Neighbor:     in.Neighbor,
			Unique:       in.Unique,
			Boundary:     in.Boundary,
			Connectivity: in.Connectivity,
			Proximity:    in.Proximity,
			Score:        in.Score,
		}
	}
	return out
}

// RateAllNeighbors runs the batched whole-overlay rating pass (one
// RateNeighbors row per node, empty for dead nodes), sharded over the
// configured worker pool. Equivalent to calling RateNeighbors for
// every node, but one pass over the overlay.
func (ov *Overlay) RateAllNeighbors() [][]NeighborRating {
	all := ov.core.RateAll(nil)
	out := make([][]NeighborRating, len(all))
	for u, infos := range all {
		if len(infos) == 0 {
			continue
		}
		row := make([]NeighborRating, len(infos))
		for i, in := range infos {
			row[i] = NeighborRating{
				Neighbor:     in.Neighbor,
				Unique:       in.Unique,
				Boundary:     in.Boundary,
				Connectivity: in.Connectivity,
				Proximity:    in.Proximity,
				Score:        in.Score,
			}
		}
		out[u] = row
	}
	return out
}

// AddNode joins one new node (capacity drawn from the configured
// range) and returns its id. The overlay must have Headroom left.
func (ov *Overlay) AddNode() int {
	ov.invalidate()
	rng := rand.New(rand.NewSource(ov.cfg.Seed + int64(ov.core.N())))
	c := ov.cfg.MinCapacity + rng.Intn(ov.cfg.MaxCapacity-ov.cfg.MinCapacity+1)
	return ov.core.AddNode(c)
}

// Fail kills the given nodes instantly and non-recoverably (until
// Revive). Their connections vanish; analysis sees the post-failure
// snapshot until Heal or Revive runs.
func (ov *Overlay) Fail(nodes ...int) {
	ov.invalidate()
	ov.core.FailNodes(nodes)
}

// FailTopDegree kills the k best-connected alive nodes — the paper's
// targeted worst-case failure — and returns their ids.
func (ov *Overlay) FailTopDegree(k int) []int {
	ov.invalidate()
	return ov.core.FailTopDegree(k)
}

// FailRandom kills k uniformly random alive nodes.
func (ov *Overlay) FailRandom(k int) []int {
	ov.invalidate()
	return ov.core.FailRandom(k)
}

// Revive brings a failed node back through the bootstrap path.
func (ov *Overlay) Revive(u int) bool {
	ov.invalidate()
	return ov.core.Revive(u)
}

// Heal runs management rounds so survivors replace lost neighbors.
func (ov *Overlay) Heal(rounds int) {
	ov.invalidate()
	ov.core.Recover(rounds)
}

// Stats summarizes the overlay's structure.
type Stats struct {
	Nodes         int
	Live          int
	Edges         int
	MeanDegree    float64
	MaxDegree     int
	Components    int
	GiantFraction float64
	// Diameter and MeanHops are measured from SampleSources BFS
	// sources (the exact values for small overlays).
	Diameter      int
	MeanHops      float64
	MeanPathCost  float64
	SampleSources int
}

// Stats computes structural statistics over the alive subgraph,
// using up to maxSources BFS/Dijkstra sources (0 = exact all-pairs,
// which is O(N²) and only sensible for small overlays).
func (ov *Overlay) Stats(maxSources int) Stats {
	sub, _ := ov.core.FreezeAlive()
	_, sizes := sub.Components()
	giant := 0
	for _, s := range sizes {
		if s > giant {
			giant = s
		}
	}
	var ps graph.PathStats
	if maxSources > 0 && maxSources < sub.N() {
		ps = sub.SampledPathStats(maxSources, rand.New(rand.NewSource(ov.cfg.Seed+7)))
	} else {
		ps = sub.AllPathStats()
	}
	st := Stats{
		Nodes:         ov.core.N(),
		Live:          ov.core.LiveCount(),
		Edges:         sub.M(),
		MeanDegree:    sub.MeanDegree(),
		MaxDegree:     sub.MaxDegree(),
		Components:    len(sizes),
		Diameter:      ps.HopDiameter,
		MeanHops:      ps.MeanHops,
		MeanPathCost:  ps.MeanCost,
		SampleSources: ps.Sources,
	}
	if sub.N() > 0 {
		st.GiantFraction = float64(giant) / float64(sub.N())
	}
	return st
}

// AlgebraicConnectivity estimates λ₁ of the alive subgraph's
// Laplacian, the paper's expansion proxy (§3.3).
func (ov *Overlay) AlgebraicConnectivity() (float64, error) {
	sub, _ := ov.core.FreezeAlive()
	return spectral.AlgebraicConnectivity(sub, 200, ov.cfg.Seed+13)
}

// NormalizedSpectrum returns the ascending normalized-Laplacian
// eigenvalues of the alive subgraph (dense; practical to a few
// thousand nodes). Figure 1's fault-tolerance evidence is read off
// this spectrum.
func (ov *Overlay) NormalizedSpectrum() ([]float64, error) {
	sub, _ := ov.core.FreezeAlive()
	return spectral.NormalizedSpectrum(sub)
}

// Content is replicated object placement over the overlay's nodes.
type Content struct {
	store   *content.Store
	catalog *content.Catalog
}

// PlaceContent distributes `objects` distinct objects over the
// overlay's nodes, each replicated on max(1, replication*N) uniform
// random nodes. Objects also receive generated keyword names so
// wildcard queries can be formed.
func (ov *Overlay) PlaceContent(objects int, replication float64) (*Content, error) {
	st, err := content.Place(ov.core.N(), content.PlacementConfig{
		Objects:     objects,
		Replication: replication,
		MinReplicas: 1,
		Seed:        ov.cfg.Seed + 17,
	})
	if err != nil {
		return nil, err
	}
	cat, err := content.GenerateCatalog(objects, ov.cfg.Seed+17)
	if err != nil {
		return nil, err
	}
	return &Content{store: st, catalog: cat}, nil
}

// Objects returns the placed object identifiers.
func (c *Content) Objects() []uint64 { return c.store.Objects() }

// Name returns the generated display name of object i.
func (c *Content) Name(i int) string { return c.catalog.Names[i] }

// Replicas returns the nodes hosting the object.
func (c *Content) Replicas(obj uint64) []int {
	rs := c.store.Replicas(obj)
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = int(r)
	}
	return out
}

// Matcher returns a node predicate for an exact-object query.
func (c *Content) Matcher(obj uint64) func(node int) bool {
	return func(node int) bool { return c.store.Has(node, obj) }
}

// WildcardMatcher returns a node predicate for a keyword query built
// from `terms` of object i's keywords — with fewer than all four
// terms, other objects sharing those keywords also match, which is
// what makes it a wildcard search.
func (c *Content) WildcardMatcher(i, terms int, seed int64) func(node int) bool {
	rng := rand.New(rand.NewSource(seed))
	q := c.catalog.QueryFor(i, terms, rng)
	nodes := c.catalog.MatchingNodes(q, c.store)
	set := make(map[int32]bool, len(nodes))
	for _, n := range nodes {
		set[n] = true
	}
	return func(node int) bool { return set[int32(node)] }
}
