package makalu

// One benchmark per paper table/figure (E1–E11 in DESIGN.md), plus
// component micro-benchmarks. Experiment benchmarks regenerate the
// corresponding result at a reduced size per iteration and surface
// the headline value via b.ReportMetric; run the cmd/makalu-experiments
// tool with -n 100000 for paper-scale numbers.

import (
	"math/rand"
	"testing"

	"makalu/internal/content"
	"makalu/internal/core"
	"makalu/internal/dht"
	"makalu/internal/experiments"
	"makalu/internal/netmodel"
	"makalu/internal/search"
	"makalu/internal/spectral"
)

func benchOpts() experiments.Options {
	return experiments.Options{N: 600, Queries: 60, Seed: 1}
}

// BenchmarkPathAnalysis regenerates E1 (§3.2): characteristic path
// length/cost and diameter of the four topologies.
func BenchmarkPathAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPaths(benchOpts(), 100)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Topology == experiments.TopoMakalu {
				b.ReportMetric(float64(row.HopDiameter), "makalu-diameter")
				b.ReportMetric(row.MeanCost, "makalu-path-cost")
			}
		}
	}
}

// BenchmarkAlgebraicConnectivity regenerates E2 (§3.3): λ₁ of the
// four topologies.
func BenchmarkAlgebraicConnectivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunConnectivity(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Topology == experiments.TopoMakalu {
				b.ReportMetric(row.Lambda1, "makalu-lambda1")
			}
		}
	}
}

// BenchmarkFailureSpectrum regenerates E3 (Figure 1): the normalized
// Laplacian spectrum of Makalu under targeted failures.
func BenchmarkFailureSpectrum(b *testing.B) {
	opt := benchOpts()
	opt.N = 300 // dense eigensolver per failure fraction
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure1(opt)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Series[len(res.Series)-1]
		b.ReportMetric(float64(last.ZeroMult), "components-at-30pct")
	}
}

// BenchmarkFloodingTable1 regenerates E4 (Table 1): messages/query
// and minimum TTL across replication ratios and topologies.
func BenchmarkFloodingTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		row := res.Rows[len(res.Rows)-1] // 1% replication
		b.ReportMetric(row.MK.MsgsPerQuery, "makalu-msgs-1pct")
		b.ReportMetric(float64(row.MK.MinTTL), "makalu-ttl-1pct")
	}
}

// BenchmarkFloodingDuplicates regenerates E5 (§4.3): the duplicate
// ratio of Makalu floods in the expanding phase.
func BenchmarkFloodingDuplicates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDuplicates(benchOpts(), 2, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Agg.DuplicateRatio(), "dup-ratio")
	}
}

// BenchmarkFloodingScaling regenerates E6 (Figure 2): messages/query
// vs network size and its log-log slope.
func BenchmarkFloodingScaling(b *testing.B) {
	opt := benchOpts()
	opt.N = 2000
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure2(opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LogLogSlope, "loglog-slope")
	}
}

// BenchmarkSuccessVsTTL regenerates E7 (Figure 3): success rate vs
// TTL across network sizes.
func BenchmarkSuccessVsTTL(b *testing.B) {
	opt := benchOpts()
	opt.N = 1000
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure3(opt)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Curves[len(res.Curves)-1]
		b.ReportMetric(last.Success[res.MaxTTL], "success-ttl4")
	}
}

// BenchmarkABFSearch regenerates E8 (Figure 4): attenuated-Bloom-
// filter identifier search success vs TTL.
func BenchmarkABFSearch(b *testing.B) {
	opt := benchOpts()
	opt.N = 1000
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure4(opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Curves[0].MeanMessages, "msgs-0.1pct")
	}
}

// BenchmarkABFvsChord regenerates E9: identifier search cost on
// Makalu+ABF vs Chord lookups.
func BenchmarkABFvsChord(b *testing.B) {
	opt := benchOpts()
	opt.N = 1000
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunABFvsDHT(opt, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ABFMeanMsgs, "abf-msgs")
		b.ReportMetric(res.ChordMeanHops, "chord-hops")
	}
}

// BenchmarkTraceValidation regenerates E10 (Table 2): trace-driven
// traffic comparison.
func BenchmarkTraceValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[1].OutgoingKbps, "makalu-kbps")
	}
}

// BenchmarkResilience regenerates E11 (§3.4): giant-component
// survival under targeted failure.
func BenchmarkResilience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunResilience(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Topology == experiments.TopoMakalu && row.FailFraction == 0.30 {
				b.ReportMetric(row.GiantFraction, "makalu-giant-30pct")
			}
		}
	}
}

// BenchmarkExpansionProfile regenerates E12: hop-by-hop neighborhood
// expansion plus clustering/assortativity for the four topologies.
func BenchmarkExpansionProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunExpansion(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Topology == experiments.TopoMakalu {
				b.ReportMetric(row.Clustering, "makalu-clustering")
			}
		}
	}
}

// BenchmarkLowReplication regenerates E13: the §4.4 needle-in-a-
// haystack flood and the Structella comparison.
func BenchmarkLowReplication(b *testing.B) {
	opt := benchOpts()
	opt.N = 2000
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLowReplication(opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MakaluSuccess, "makalu-success")
	}
}

// BenchmarkSearchStrategies regenerates E14: strategy performance and
// hub-burden comparison.
func BenchmarkSearchStrategies(b *testing.B) {
	opt := benchOpts()
	opt.N = 1500
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunStrategies(opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Topology == experiments.TopoV04 && row.Strategy == "degree-biased" {
				b.ReportMetric(row.Top1PctLoadShare, "hub-load-share")
			}
		}
	}
}

// BenchmarkConvergence regenerates E15: management-loop settling.
func BenchmarkConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunConvergence(benchOpts(), 6)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rounds[len(res.Rounds)-1]
		b.ReportMetric(float64(last.Churn()), "final-round-churn")
	}
}

// ---- Component micro-benchmarks ----

// BenchmarkKademliaLookup measures one Kademlia lookup on a 10k
// network (the Overnet-style comparator of §6).
func BenchmarkKademliaLookup(b *testing.B) {
	k, err := dht.NewKademlia(10000, 20, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	hops := 0
	for i := 0; i < b.N; i++ {
		_, h := k.Lookup(rng.Intn(10000), rng.Uint64())
		hops += h
	}
	b.ReportMetric(float64(hops)/float64(b.N), "hops/lookup")
}

// BenchmarkOverlayBuild measures full Makalu construction throughput.
func BenchmarkOverlayBuild(b *testing.B) {
	const n = 2000
	net := netmodel.NewEuclidean(n, 1000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(n, core.DefaultConfig(net, int64(i))); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "nodes/op")
}

// BenchmarkRatingFunction measures one peer-rating evaluation.
func BenchmarkRatingFunction(b *testing.B) {
	net := netmodel.NewEuclidean(2000, 1000, 1)
	o, err := core.Build(2000, core.DefaultConfig(net, 1))
	if err != nil {
		b.Fatal(err)
	}
	var buf []core.RatingInfo
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = o.RateNeighbors(i%2000, buf[:0])
	}
}

// BenchmarkRateAllPass measures the batched whole-overlay rating pass
// backing the ratings experiment and churn snapshots.
func BenchmarkRateAllPass(b *testing.B) {
	net := netmodel.NewEuclidean(2000, 1000, 1)
	o, err := core.Build(2000, core.DefaultConfig(net, 1))
	if err != nil {
		b.Fatal(err)
	}
	var buf [][]core.RatingInfo
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = o.RateAll(buf)
	}
}

// BenchmarkFloodQuery measures one TTL-4 flood on a 10k overlay.
func BenchmarkFloodQuery(b *testing.B) {
	const n = 10000
	net := netmodel.NewEuclidean(n, 1000, 1)
	o, err := core.Build(n, core.DefaultConfig(net, 1))
	if err != nil {
		b.Fatal(err)
	}
	g := o.Freeze()
	store, err := content.Place(n, content.PlacementConfig{Objects: 20, Replication: 0.01, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	fl := search.NewFlooder(g)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	msgs := 0
	for i := 0; i < b.N; i++ {
		obj := store.RandomObject(rng)
		r := fl.Flood(rng.Intn(n), 4, func(u int) bool { return store.Has(u, obj) })
		msgs += r.Messages
	}
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/query")
}

// BenchmarkABFLookup measures one identifier lookup on a 10k overlay.
func BenchmarkABFLookup(b *testing.B) {
	const n = 10000
	net := netmodel.NewEuclidean(n, 1000, 1)
	o, err := core.Build(n, core.DefaultConfig(net, 1))
	if err != nil {
		b.Fatal(err)
	}
	g := o.Freeze()
	store, err := content.Place(n, content.PlacementConfig{Objects: 20, Replication: 0.001, MinReplicas: 1, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	abf, err := search.BuildABFNetwork(g, store, search.DefaultABFConfig())
	if err != nil {
		b.Fatal(err)
	}
	router := search.NewABFRouter(abf)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj := store.RandomObject(rng)
		router.Lookup(rng.Intn(n), obj, 25, rng)
	}
}

// BenchmarkChordLookup measures one Chord lookup on a 10k ring.
func BenchmarkChordLookup(b *testing.B) {
	c, err := dht.New(10000, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(rng.Intn(10000), rng.Uint64())
	}
}

// BenchmarkLanczosLambda1 measures the sparse λ₁ estimator on a 2k
// overlay.
func BenchmarkLanczosLambda1(b *testing.B) {
	net := netmodel.NewEuclidean(2000, 1000, 1)
	o, err := core.Build(2000, core.DefaultConfig(net, 1))
	if err != nil {
		b.Fatal(err)
	}
	g := o.Freeze()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spectral.AlgebraicConnectivity(g, 150, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDenseSpectrum measures the dense normalized-Laplacian
// eigensolver at n=300.
func BenchmarkDenseSpectrum(b *testing.B) {
	net := netmodel.NewEuclidean(300, 1000, 1)
	o, err := core.Build(300, core.DefaultConfig(net, 1))
	if err != nil {
		b.Fatal(err)
	}
	g := o.Freeze()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spectral.NormalizedSpectrum(g); err != nil {
			b.Fatal(err)
		}
	}
}
