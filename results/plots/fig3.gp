set xlabel 'TTL'
set ylabel 'success rate'
set yrange [0:1]
set title 'Figure 3: success rate vs TTL (1% replication)'
plot 'fig3.dat' using 1:2 with linespoints title '100 nodes', \
     'fig3.dat' using 1:3 with linespoints title '200 nodes', \
     'fig3.dat' using 1:4 with linespoints title '500 nodes', \
     'fig3.dat' using 1:5 with linespoints title '1000 nodes', \
     'fig3.dat' using 1:6 with linespoints title '2000 nodes', \
     'fig3.dat' using 1:7 with linespoints title '5000 nodes', \
     'fig3.dat' using 1:8 with linespoints title '10000 nodes', \
     'fig3.dat' using 1:9 with linespoints title '100000 nodes'
pause -1
