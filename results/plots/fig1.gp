set xlabel 'normalized rank'
set ylabel 'eigenvalue'
set yrange [0:2]
set title 'Figure 1: normalized Laplacian spectrum under targeted failure'
plot "fig1_s0.dat" using 1:2 with lines title "k-regular (intact)", \
     "fig1_s1.dat" using 1:2 with lines title "Makalu, 0% failed", \
     "fig1_s2.dat" using 1:2 with lines title "Makalu, 10% failed", \
     "fig1_s3.dat" using 1:2 with lines title "Makalu, 20% failed", \
     "fig1_s4.dat" using 1:2 with lines title "Makalu, 30% failed"
pause -1
