set xlabel 'TTL'
set ylabel 'success rate'
set yrange [0:1]
set title 'Figure 4: attenuated-Bloom-filter search success vs TTL (100k nodes)'
plot 'fig4.dat' using 1:2 with linespoints title '0.1% replication', \
     'fig4.dat' using 1:3 with linespoints title '0.5% replication', \
     'fig4.dat' using 1:4 with linespoints title '1.0% replication'
pause -1
