set logscale xy
set xlabel 'network size'
set ylabel 'messages/query'
set title 'Figure 2: messages per query vs network size (TTL 4, 1% replication)'
plot 'fig2.dat' using 1:2 with linespoints title 'Makalu'
pause -1
